//! Per-rank distributed vertex state for the Steiner algorithm.
//!
//! Every vertex `v` carries the Alg 3 states `src(v)` (nearest seed),
//! `d_1(src(v), v)` (distance to it), `pred(v)` (predecessor on the
//! shortest path), the predecessor edge's weight (so tree edges can be
//! emitted without a remote adjacency lookup), and a `traced` flag used by
//! the tree-edge phase. State for owned non-delegate vertices lives only on
//! the owner rank; delegate (hub) vertex state is *replicated* on every
//! rank and kept consistent by controller broadcasts, mirroring HavoqGT's
//! delegate mechanism.
//!
//! A vertex label is the triple `(dist, src, pred)` ordered
//! lexicographically; relaxation accepts strictly smaller labels only, so
//! the asynchronous computation converges to a unique fixpoint regardless
//! of message timing — this is what makes the distributed solver's output
//! deterministic and bit-comparable to the sequential reference.

use crate::messages::VoronoiMsg;
use stgraph::csr::{Distance, Vertex, Weight, INF};
use stgraph::partition::RankGraph;
use struntime::Wire;

/// Sentinel for "no vertex" in `src`/`pred` slots.
pub const NO_VERTEX: Vertex = Vertex::MAX;

/// A relaxation label: distance, seed, predecessor — compared
/// lexicographically (smaller wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Label {
    /// Distance from the seed.
    pub dist: Distance,
    /// The seed (`src`) this label descends from.
    pub src: Vertex,
    /// Predecessor vertex on the path (`NO_VERTEX` for seeds).
    pub pred: Vertex,
}

impl Label {
    /// The "unreached" label — worse than every real label.
    pub const UNSET: Label = Label {
        dist: INF,
        src: NO_VERTEX,
        pred: NO_VERTEX,
    };

    /// The label of seed `s` itself.
    pub fn seed(s: Vertex) -> Label {
        Label {
            dist: 0,
            src: s,
            pred: NO_VERTEX,
        }
    }
}

impl Wire for Label {
    fn encoded_len(&self) -> usize {
        8 + 4 + 4
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.dist.encode_into(out);
        self.src.encode_into(out);
        self.pred.encode_into(out);
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(Label {
            dist: Distance::decode_from(buf, pos)?,
            src: Vertex::decode_from(buf, pos)?,
            pred: Vertex::decode_from(buf, pos)?,
        })
    }
}

struct StateArrays {
    dist: Vec<Distance>,
    src: Vec<Vertex>,
    pred: Vec<Vertex>,
    pred_weight: Vec<Weight>,
    traced: Vec<bool>,
}

impl StateArrays {
    fn new(len: usize) -> Self {
        StateArrays {
            dist: vec![INF; len],
            src: vec![NO_VERTEX; len],
            pred: vec![NO_VERTEX; len],
            pred_weight: vec![0; len],
            traced: vec![false; len],
        }
    }

    fn bytes(len: usize) -> usize {
        len * (std::mem::size_of::<Distance>()
            + 3 * std::mem::size_of::<Vertex>()
            + std::mem::size_of::<Weight>()
            + 1)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.dist.len() as u64).encode_into(out);
        for i in 0..self.dist.len() {
            self.dist[i].encode_into(out);
            self.src[i].encode_into(out);
            self.pred[i].encode_into(out);
            self.pred_weight[i].encode_into(out);
            self.traced[i].encode_into(out);
        }
    }

    /// Overwrites these arrays from a snapshot; `None` if the snapshot was
    /// taken for a different vertex count (partitioning changed) or is
    /// truncated.
    fn decode_over(&mut self, buf: &[u8], pos: &mut usize) -> Option<()> {
        let len = u64::decode_from(buf, pos)? as usize;
        if len != self.dist.len() {
            return None;
        }
        for i in 0..len {
            self.dist[i] = Distance::decode_from(buf, pos)?;
            self.src[i] = Vertex::decode_from(buf, pos)?;
            self.pred[i] = Vertex::decode_from(buf, pos)?;
            self.pred_weight[i] = Weight::decode_from(buf, pos)?;
            self.traced[i] = bool::decode_from(buf, pos)?;
        }
        Some(())
    }
}

/// Which storage a vertex's state lives in on this rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Owned(usize),
    Delegate(usize),
}

/// All Steiner vertex state held by one rank.
pub struct VertexStates {
    owned_start: Vertex,
    owned_len: usize,
    delegates: std::sync::Arc<Vec<Vertex>>,
    owned: StateArrays,
    replicas: StateArrays,
}

impl VertexStates {
    /// Allocates state for the rank's owned vertices plus replicas of every
    /// delegate.
    pub fn new(rg: &RankGraph) -> Self {
        let owned_len = rg.num_owned();
        VertexStates {
            owned_start: rg.owned.start,
            owned_len,
            delegates: std::sync::Arc::clone(&rg.delegates),
            owned: StateArrays::new(owned_len),
            replicas: StateArrays::new(rg.delegates.len()),
        }
    }

    /// Approximate bytes of algorithm state held (the Fig 8 "state" series
    /// contribution of the vertex arrays).
    pub fn memory_bytes(&self) -> usize {
        StateArrays::bytes(self.owned_len) + StateArrays::bytes(self.delegates.len())
    }

    /// Whether `v` is a delegate vertex (state replicated everywhere).
    pub fn is_delegate(&self, v: Vertex) -> bool {
        self.delegates.binary_search(&v).is_ok()
    }

    /// Whether this rank holds state for `v` (owned or replica).
    pub fn holds(&self, v: Vertex) -> bool {
        self.is_delegate(v)
            || (v >= self.owned_start && ((v - self.owned_start) as usize) < self.owned_len)
    }

    fn slot(&self, v: Vertex) -> Slot {
        if let Ok(i) = self.delegates.binary_search(&v) {
            return Slot::Delegate(i);
        }
        assert!(
            v >= self.owned_start && ((v - self.owned_start) as usize) < self.owned_len,
            "rank holds no state for vertex {v}"
        );
        Slot::Owned((v - self.owned_start) as usize)
    }

    fn arrays(&self, s: Slot) -> (&StateArrays, usize) {
        match s {
            Slot::Owned(i) => (&self.owned, i),
            Slot::Delegate(i) => (&self.replicas, i),
        }
    }

    fn arrays_mut(&mut self, s: Slot) -> (&mut StateArrays, usize) {
        match s {
            Slot::Owned(i) => (&mut self.owned, i),
            Slot::Delegate(i) => (&mut self.replicas, i),
        }
    }

    /// The current label of `v`.
    pub fn label(&self, v: Vertex) -> Label {
        let (a, i) = self.arrays(self.slot(v));
        Label {
            dist: a.dist[i],
            src: a.src[i],
            pred: a.pred[i],
        }
    }

    /// Weight of the predecessor edge recorded with `v`'s label.
    pub fn pred_weight(&self, v: Vertex) -> Weight {
        let (a, i) = self.arrays(self.slot(v));
        a.pred_weight[i]
    }

    /// Applies `label` to `v` if it is strictly smaller than the current
    /// one; records `pred_weight` alongside. Returns whether it improved.
    pub fn try_improve(&mut self, v: Vertex, label: Label, pred_weight: Weight) -> bool {
        let (a, i) = self.arrays_mut(self.slot(v));
        let current = Label {
            dist: a.dist[i],
            src: a.src[i],
            pred: a.pred[i],
        };
        if label < current {
            a.dist[i] = label.dist;
            a.src[i] = label.src;
            a.pred[i] = label.pred;
            a.pred_weight[i] = pred_weight;
            true
        } else {
            false
        }
    }

    /// Initializes seed labels: owned seeds and *all* delegate seeds (every
    /// rank can do the latter without communication since the seed list is
    /// globally known).
    pub fn init_seeds(&mut self, seeds: &[Vertex]) {
        for &s in seeds {
            if self.holds(s) {
                let (a, i) = self.arrays_mut(self.slot(s));
                a.dist[i] = 0;
                a.src[i] = s;
                a.pred[i] = NO_VERTEX;
                a.pred_weight[i] = 0;
            }
        }
    }

    /// Marks `v` traced by the tree-edge phase; returns `false` if it was
    /// already traced (the visitor should stop).
    pub fn mark_traced(&mut self, v: Vertex) -> bool {
        let (a, i) = self.arrays_mut(self.slot(v));
        if a.traced[i] {
            false
        } else {
            a.traced[i] = true;
            true
        }
    }

    /// Appends a snapshot of all vertex state (owned arrays plus delegate
    /// replicas) to `out` via the wire codec, for the crash-recovery phase
    /// checkpoints. The delegate list and ownership range are derived from
    /// the partition and are not serialized.
    pub fn encode_checkpoint(&self, out: &mut Vec<u8>) {
        self.owned.encode_into(out);
        self.replicas.encode_into(out);
    }

    /// Restores a snapshot taken by [`VertexStates::encode_checkpoint`]
    /// over states freshly created for the same rank graph; `None` if the
    /// array shapes do not line up or the buffer is truncated.
    pub fn restore_checkpoint(&mut self, buf: &[u8], pos: &mut usize) -> Option<()> {
        self.owned.decode_over(buf, pos)?;
        self.replicas.decode_over(buf, pos)
    }

    /// Iterates the owned (non-delegate) vertices and their labels.
    pub fn owned_labels(&self) -> impl Iterator<Item = (Vertex, Label)> + '_ {
        (0..self.owned_len).filter_map(move |i| {
            let v = self.owned_start + i as Vertex;
            if self.is_delegate(v) {
                None
            } else {
                Some((
                    v,
                    Label {
                        dist: self.owned.dist[i],
                        src: self.owned.src[i],
                        pred: self.owned.pred[i],
                    },
                ))
            }
        })
    }
}

/// Reusable per-rank visitor scratch buffers, allocated once per rank and
/// reused across phases, retries, and BSP supersteps so the Voronoi hot
/// path's steady state allocates nothing:
///
/// - `init` — the bootstrap message list the asynchronous phase seeds its
///   local queue from,
/// - `outboxes` — the BSP variant's per-destination relaxation outboxes,
/// - `wire` — the flat byte buffer batches are wire-encoded into before
///   shipping (see `ChannelGroup::send_batch_encoded`).
///
/// Buffers are cleared (capacity retained) each time they are handed out,
/// so a fault-injection retry of the whole solve reuses the previous
/// attempt's allocations.
#[derive(Default)]
pub struct ScratchArena {
    init: Vec<VoronoiMsg>,
    outboxes: Vec<Vec<VoronoiMsg>>,
    wire: Vec<u8>,
}

impl ScratchArena {
    /// An empty arena (no buffers allocated until first use).
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// The bootstrap message buffer, cleared but with capacity retained.
    pub fn init_msgs(&mut self) -> &mut Vec<VoronoiMsg> {
        self.init.clear();
        &mut self.init
    }

    /// The BSP outboxes (resized to `p` destinations, each cleared with
    /// capacity retained) and the shared wire-encoding scratch buffer,
    /// split-borrowed so a superstep loop can fill and flush concurrently.
    pub fn bsp_buffers(&mut self, p: usize) -> (&mut Vec<Vec<VoronoiMsg>>, &mut Vec<u8>) {
        self.outboxes.resize_with(p, Vec::new);
        for outbox in &mut self.outboxes {
            outbox.clear();
        }
        (&mut self.outboxes, &mut self.wire)
    }

    /// Approximate bytes held across all scratch buffers (capacity, since
    /// retained capacity is what the arena's reuse is about).
    pub fn memory_bytes(&self) -> usize {
        self.init.capacity() * std::mem::size_of::<VoronoiMsg>()
            + self
                .outboxes
                .iter()
                .map(|o| o.capacity() * std::mem::size_of::<VoronoiMsg>())
                .sum::<usize>()
            + self.outboxes.capacity() * std::mem::size_of::<Vec<VoronoiMsg>>()
            + self.wire.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::builder::GraphBuilder;
    use stgraph::partition::partition_graph;

    fn make_states(delegate: bool) -> VertexStates {
        let mut b = GraphBuilder::new(8);
        for i in 0..7u32 {
            b.add_edge(i, i + 1, 1);
        }
        b.add_edge(0, 7, 1);
        for v in 2..7u32 {
            b.add_edge(0, v, 2);
        }
        let g = b.build();
        let threshold = if delegate { Some(5) } else { None };
        let pg = partition_graph(&g, 2, threshold);
        VertexStates::new(&pg.ranks[0])
    }

    #[test]
    fn label_ordering_is_lexicographic() {
        let a = Label {
            dist: 1,
            src: 9,
            pred: 9,
        };
        let b = Label {
            dist: 2,
            src: 0,
            pred: 0,
        };
        assert!(a < b);
        let c = Label {
            dist: 1,
            src: 3,
            pred: 9,
        };
        assert!(c < a);
        assert!(Label::seed(0) < Label::UNSET);
    }

    #[test]
    fn try_improve_applies_only_smaller() {
        let mut st = make_states(false);
        let l1 = Label {
            dist: 5,
            src: 2,
            pred: 3,
        };
        assert!(st.try_improve(1, l1, 7));
        assert_eq!(st.label(1), l1);
        assert_eq!(st.pred_weight(1), 7);
        // Equal label does not improve.
        assert!(!st.try_improve(1, l1, 7));
        // Worse distance rejected.
        assert!(!st.try_improve(
            1,
            Label {
                dist: 6,
                src: 0,
                pred: 0
            },
            1
        ));
        // Same distance, smaller src accepted.
        assert!(st.try_improve(
            1,
            Label {
                dist: 5,
                src: 1,
                pred: 9
            },
            2
        ));
    }

    #[test]
    fn init_seeds_sets_zero_labels() {
        let mut st = make_states(false);
        st.init_seeds(&[1, 3, 6]); // rank 0 owns 0..4
        assert_eq!(st.label(1), Label::seed(1));
        assert_eq!(st.label(3), Label::seed(3));
        assert_eq!(st.label(0), Label::UNSET);
    }

    #[test]
    fn delegate_state_is_held_by_all_ranks() {
        let st = make_states(true);
        // Vertex 0 has degree 7 -> delegate; rank 0 holds it via replica.
        assert!(st.is_delegate(0));
        assert!(st.holds(0));
        // Remote non-delegate not held.
        assert!(!st.holds(7));
    }

    #[test]
    fn mark_traced_once() {
        let mut st = make_states(false);
        assert!(st.mark_traced(2));
        assert!(!st.mark_traced(2));
    }

    #[test]
    #[should_panic]
    fn accessing_remote_state_panics() {
        let st = make_states(false);
        st.label(7);
    }

    #[test]
    fn checkpoint_snapshot_round_trips() {
        let mut st = make_states(true);
        st.init_seeds(&[1, 3]);
        st.try_improve(
            2,
            Label {
                dist: 4,
                src: 1,
                pred: 1,
            },
            4,
        );
        st.mark_traced(2);
        let mut blob = Vec::new();
        st.encode_checkpoint(&mut blob);

        let mut fresh = make_states(true);
        let mut pos = 0;
        fresh
            .restore_checkpoint(&blob, &mut pos)
            .expect("snapshot restores over same-shape states");
        assert_eq!(pos, blob.len(), "restore consumes the whole snapshot");
        assert_eq!(fresh.label(2), st.label(2));
        assert_eq!(fresh.pred_weight(2), st.pred_weight(2));
        assert_eq!(fresh.label(1), Label::seed(1));
        assert!(!fresh.mark_traced(2), "traced flags survive the snapshot");

        // A snapshot for a different shape is rejected, not misapplied.
        let mut other = {
            let mut b = GraphBuilder::new(4);
            b.add_edge(0, 1, 1);
            b.add_edge(1, 2, 1);
            b.add_edge(2, 3, 1);
            let g = b.build();
            let pg = partition_graph(&g, 2, None);
            VertexStates::new(&pg.ranks[0])
        };
        let mut pos = 0;
        assert!(other.restore_checkpoint(&blob, &mut pos).is_none());
    }

    #[test]
    fn scratch_arena_clears_but_retains_capacity() {
        let mut a = ScratchArena::new();
        a.init_msgs()
            .extend([VoronoiMsg::Start(1), VoronoiMsg::Start(2)]);
        let init = a.init_msgs(); // handed out cleared
        assert!(init.is_empty());
        assert!(init.capacity() >= 2, "reuse must keep the allocation");

        let (outboxes, _wire) = a.bsp_buffers(4);
        assert_eq!(outboxes.len(), 4);
        outboxes[2].push(VoronoiMsg::Start(9));
        let (outboxes, _wire) = a.bsp_buffers(2);
        assert_eq!(outboxes.len(), 2, "shrinks to the requested rank count");
        assert!(outboxes.iter().all(|o| o.is_empty()));
    }
}
