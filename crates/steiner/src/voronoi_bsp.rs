//! Bulk-synchronous Voronoi computation — the design the paper rejected.
//!
//! §IV: "Previous studies showed that asynchronous processing offers
//! notable advantage over bulk synchronous processing (BSP) for
//! distributed shortest path computation: the former enabling faster
//! convergence." This module implements the BSP alternative so the claim
//! is measurable on the same runtime: synchronized Bellman-Ford
//! supersteps, each one barrier-fenced message exchange followed by local
//! relaxation, repeated until a global all-reduce reports no change.
//!
//! The labels (and therefore the tree) are identical to the asynchronous
//! kernel's — both converge to the unique `(dist, src, pred)` fixpoint —
//! but the BSP schedule pays one barrier + one change all-reduce per
//! superstep and cannot overlap communication with computation. The
//! `bsp_vs_async` benchmark quantifies the gap. Delegates are not
//! supported (the ablation isolates scheduling, not partitioning).

use crate::messages::VoronoiMsg;
use crate::state::{Label, ScratchArena, VertexStates};
use stgraph::csr::Vertex;
use stgraph::partition::{BlockPartition, RankGraph};
use struntime::{ChannelGroup, Comm};

/// Statistics from one BSP Voronoi run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BspStats {
    /// Supersteps until global quiescence.
    pub supersteps: u64,
    /// Relaxation messages this rank received and applied (incl. local).
    pub processed: u64,
}

/// Runs bulk-synchronous Voronoi computation to the same fixpoint as
/// [`crate::voronoi::run`]. Collective; requires a delegate-free
/// partitioning.
#[allow(clippy::too_many_arguments)] // collective phase entry: ctx + graph views + state + knobs
pub fn run_bsp(
    comm: &Comm,
    chan: &ChannelGroup<Vec<VoronoiMsg>>,
    rg: &RankGraph,
    partition: &BlockPartition,
    states: &mut VertexStates,
    seeds: &[Vertex],
    scratch: &mut ScratchArena,
) -> BspStats {
    assert!(
        rg.delegates.is_empty(),
        "the BSP ablation requires delegate-free partitioning"
    );
    states.init_seeds(seeds);
    let p = comm.num_ranks();
    let mut stats = BspStats::default();

    // Superstep 0's outbox: relax the arcs of owned seeds. Outboxes and
    // the wire-encoding buffer come from the per-rank arena, so a sweep of
    // repeated runs reuses one set of allocations.
    let (outboxes, wire) = scratch.bsp_buffers(p);
    let emit = |outboxes: &mut Vec<Vec<VoronoiMsg>>, v: Vertex, label: Label, rg: &RankGraph| {
        for (nbr, w) in rg.adj(v) {
            outboxes[partition.owner(nbr)].push(VoronoiMsg::Relax {
                target: nbr,
                label: Label {
                    dist: label.dist + w,
                    src: label.src,
                    pred: v,
                },
                pred_weight: w,
            });
        }
    };
    for &s in seeds {
        if rg.owns(s) {
            emit(outboxes, s, Label::seed(s), rg);
        }
    }

    loop {
        stats.supersteps += 1;
        // Exchange: ship every outbox (self-addressed included, for a
        // uniform code path) through the flat wire codec — the outbox and
        // encoding buffers keep their capacity across supersteps — then
        // fence so all sends are visible.
        let mut changed = 0u64;
        for (dest, outbox) in outboxes.iter_mut().enumerate() {
            chan.send_batch_encoded(dest, outbox, wire);
        }
        comm.barrier();
        // Apply everything that arrived; improvements seed the next
        // superstep's outboxes.
        while let Some(batch) = chan.try_recv() {
            for msg in batch {
                let VoronoiMsg::Relax {
                    target,
                    label,
                    pred_weight,
                } = msg
                else {
                    unreachable!("BSP kernel only sends Relax messages");
                };
                stats.processed += 1;
                if states.try_improve(target, label, pred_weight) {
                    changed += 1;
                    emit(outboxes, target, label, rg);
                }
            }
        }
        // Global convergence check: one all-reduce per superstep (the BSP
        // overhead the paper's async design avoids).
        let mut total = vec![changed];
        comm.allreduce_sum(&mut total);
        if total[0] == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NO_VERTEX;
    use baselines::shortest_path::voronoi_cells;
    use stgraph::datasets::Dataset;
    use stgraph::partition::partition_graph;
    use struntime::World;

    fn bsp_labels(g: &stgraph::CsrGraph, seeds: &[Vertex], p: usize) -> Vec<(Vertex, Label)> {
        let pg = partition_graph(g, p, None);
        let pg = &pg;
        let out = World::run(p, |comm| {
            let chan = comm.open_channels::<Vec<VoronoiMsg>>("voronoi_bsp");
            let rg = &pg.ranks[comm.rank()];
            let mut st = VertexStates::new(rg);
            let mut scratch = ScratchArena::new();
            run_bsp(comm, &chan, rg, &pg.partition, &mut st, seeds, &mut scratch);
            st.owned_labels().collect::<Vec<_>>()
        });
        let mut all: Vec<(Vertex, Label)> = out.results.into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(v, _)| v);
        all
    }

    #[test]
    fn bsp_matches_sequential_voronoi() {
        let g = Dataset::Cts.generate_tiny(3);
        let cc = stgraph::traversal::connected_components(&g);
        let verts = cc.largest_component_vertices();
        let seeds: Vec<Vertex> = verts.iter().step_by(verts.len() / 6).copied().collect();
        let vr = voronoi_cells(&g, &seeds);
        for p in [1usize, 3] {
            for (v, l) in bsp_labels(&g, &seeds, p) {
                assert_eq!(l.dist, vr.dist[v as usize], "p={p}, vertex {v}");
                if l.src != NO_VERTEX {
                    assert_eq!(Some(l.src), vr.src[v as usize], "p={p}, vertex {v}");
                }
            }
        }
    }

    #[test]
    fn bsp_and_async_agree() {
        let g = Dataset::Lvj.generate_tiny(6);
        let cc = stgraph::traversal::connected_components(&g);
        let verts = cc.largest_component_vertices();
        let seeds: Vec<Vertex> = verts.iter().step_by(verts.len() / 8).copied().collect();
        let pg = partition_graph(&g, 2, None);
        let pg = &pg;
        let seeds_ref = &seeds;
        let async_out = World::run(2, |comm| {
            let chan = comm.open_channels::<Vec<VoronoiMsg>>("voronoi");
            let rg = &pg.ranks[comm.rank()];
            let mut st = VertexStates::new(rg);
            let mut scratch = ScratchArena::new();
            crate::voronoi::run(
                comm,
                &chan,
                rg,
                &pg.partition,
                &mut st,
                seeds_ref,
                struntime::traversal::TraversalOptions::new(struntime::QueueKind::Priority),
                &mut scratch,
            );
            st.owned_labels().collect::<Vec<_>>()
        });
        let mut async_labels: Vec<(Vertex, Label)> =
            async_out.results.into_iter().flatten().collect();
        async_labels.sort_unstable_by_key(|&(v, _)| v);
        assert_eq!(bsp_labels(&g, &seeds, 2), async_labels);
    }

    #[test]
    fn superstep_count_tracks_weighted_depth() {
        // A path needs roughly one superstep per hop.
        let mut b = stgraph::GraphBuilder::new(10);
        for i in 0..9u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let pg = partition_graph(&g, 2, None);
        let pg = &pg;
        let out = World::run(2, |comm| {
            let chan = comm.open_channels::<Vec<VoronoiMsg>>("bsp");
            let rg = &pg.ranks[comm.rank()];
            let mut st = VertexStates::new(rg);
            let mut scratch = ScratchArena::new();
            run_bsp(comm, &chan, rg, &pg.partition, &mut st, &[0], &mut scratch)
        });
        // 9 propagation supersteps + the final empty confirming one.
        assert!(out.results[0].supersteps >= 9);
    }
}
