//! Machine-readable run reports with a stable JSON schema.
//!
//! A [`RunReport`] condenses one [`crate::SolveReport`] into the numbers
//! the paper's evaluation plots (Figs 3–8): per-phase wall-clock,
//! per-phase message counters, memory peaks, the simulated-speedup work
//! metric, tree quality, and a fingerprint of the configuration that
//! produced it. [`RunReport::to_json`] renders it with
//! [`stgraph::json`]; every bench binary writes one report file
//! (`BENCH_<name>.json`) per run so the perf trajectory is diffable
//! across commits.
//!
//! ## Schema stability
//!
//! The JSON layout is a compatibility contract, validated by
//! `cargo run -p xtask -- check-reports` in CI:
//!
//! - [`SCHEMA_VERSION`] is bumped on any breaking change (key removal or
//!   meaning change); adding keys is non-breaking.
//! - Keys are emitted in a fixed order (insertion-ordered objects), so
//!   byte-level diffs of two reports line up.
//! - Durations are integer microseconds (`*_us`), sizes integer bytes.

use crate::phases::Phase;
use crate::{ReduceModeConfig, SolveReport, SolverConfig};
use stgraph::json::Json;
use struntime::{Gauge, QueueKind, TelemetryDump};

/// Version of the report JSON layout; see the module docs for the
/// stability rules.
///
/// **v1 → v2**: adds `imbalance_ratio` (always a number),
/// `critical_path` and `latency_quantiles` (objects when the solve ran
/// with tracing/metrics enabled, `null` otherwise). No v1 key was
/// removed or renamed; v2 is a strict superset. The bump is still
/// breaking for consumers because v1 readers would silently miss the
/// observability fields newer tooling keys on.
///
/// **v2 → v3**: adds the `faults` object (injection and
/// reliability-protocol counters: `drops`, `dups`, `delays`, `stalls`,
/// `retransmits`, `dedup_discards`, `acks`, `retries` — all-zero for a
/// fault-free run) and `config.faults` (the fault-plan spec string, or
/// `"off"`). Again a strict superset of the previous version, and again
/// breaking: v2 readers comparing reports across runs would silently
/// treat a faulted run as comparable to a fault-free one.
///
/// **v3 → v4**: adds the `stale_drops` object (`total` plus `per_rank`,
/// counting Voronoi relaxations the ordered queue disciplines dropped
/// unvisited at pop time) and the `"bucketed:DELTA"` form of
/// `config.queue`. Strict superset once more, and breaking for the same
/// reason: v3 readers comparing visit counts across disciplines would
/// silently miss that part of the work was filtered, not performed.
///
/// **v4 → v5**: adds `timeseries` (the per-rank columnar gauge time
/// series from [`struntime::telemetry`], `null` when the solve ran with
/// telemetry off) and `peak_memory` (per-phase peak-memory watermarks
/// attributing the high-water mark to queue vs arena vs reliability
/// buffers, `null` likewise). Strict superset, and breaking for the
/// usual reason: v4 readers diffing memory across runs would silently
/// miss that the peaks are now attributable per phase.
///
/// **v5 → v6**: adds the `recovery` object (`crashes_injected`,
/// `checkpoints_taken`, `checkpoint_bytes`, `restores`,
/// `replayed_phases`, `aborted_ranks` — all-zero for an undisturbed
/// solve; see [`crate::recovery`]). Strict superset, and breaking for
/// the usual reason: v5 readers comparing phase times or work counters
/// across runs would silently treat a crashed-and-replayed solve as
/// comparable to an undisturbed one.
///
/// **v6 → v7**: adds `config.mst_mode` (`"replicated"` or `"dist"`) and
/// the `boruvka` object (`rounds`, `edges_reduced` per round,
/// `components` remaining per round — `null` for replicated solves; see
/// [`crate::boruvka`]). Strict superset, and breaking for the usual
/// reason: v6 readers diffing `global_min_edge`/`mst` phase times or
/// collective bytes across runs would silently compare the dense
/// `Allreduce(MIN)` pipeline against the Borůvka rounds as if they were
/// the same work.
pub const SCHEMA_VERSION: u64 = 7;

/// The configuration a solve ran with, reduced to plain strings and
/// numbers for the report.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigFingerprint {
    /// Simulated rank count.
    pub num_ranks: usize,
    /// Queue discipline (`"fifo"`, `"priority"`, `"bucketed:DELTA"`,
    /// `"adversarial:SEED"`).
    pub queue: String,
    /// Delegate degree threshold, if delegation was on.
    pub delegate_threshold: Option<usize>,
    /// Reduction layout (`"auto"`, `"dense"`, `"dense(chunk=N)"`,
    /// `"sparse"`).
    pub reduce_mode: String,
    /// MST pipeline (`"replicated"` Prim or `"dist"` Borůvka; v7).
    pub mst_mode: String,
    /// Whether KMB steps 4–5 refinement ran.
    pub refine: bool,
    /// Visitors per aggregated network batch.
    pub batch_size: usize,
    /// Fault-plan spec (`"drop=0.1,seed=7"` style, see
    /// [`struntime::faults::FaultPlan::from_spec`]), or `"off"`.
    pub faults: String,
}

impl ConfigFingerprint {
    /// Derives the fingerprint from a solver configuration.
    pub fn of(config: &SolverConfig) -> ConfigFingerprint {
        let queue = match config.queue {
            QueueKind::Fifo => "fifo".to_string(),
            QueueKind::Priority => "priority".to_string(),
            QueueKind::Bucketed { delta } => format!("bucketed:{delta}"),
            QueueKind::Adversarial { seed } => format!("adversarial:{seed}"),
        };
        let reduce_mode = match config.reduce_mode {
            ReduceModeConfig::Auto => "auto".to_string(),
            ReduceModeConfig::Dense { chunk: None } => "dense".to_string(),
            ReduceModeConfig::Dense { chunk: Some(c) } => format!("dense(chunk={c})"),
            ReduceModeConfig::Sparse => "sparse".to_string(),
        };
        let mst_mode = match config.mst_mode {
            crate::MstMode::Replicated => "replicated".to_string(),
            crate::MstMode::Dist => "dist".to_string(),
        };
        let faults = match config.faults.filter(|pl| pl.is_active()) {
            Some(plan) => plan.to_spec(),
            None => "off".to_string(),
        };
        ConfigFingerprint {
            num_ranks: config.num_ranks,
            queue,
            delegate_threshold: config.delegate_threshold,
            reduce_mode,
            mst_mode,
            refine: config.refine,
            batch_size: config.batch_size,
            faults,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("num_ranks", self.num_ranks)
            .with("queue", self.queue.as_str())
            .with("delegate_threshold", self.delegate_threshold)
            .with("reduce_mode", self.reduce_mode.as_str())
            .with("mst_mode", self.mst_mode.as_str())
            .with("refine", self.refine)
            .with("batch_size", self.batch_size)
            .with("faults", self.faults.as_str())
    }
}

/// One phase's counters in the report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    /// Messages that crossed a (simulated) network hop.
    pub remote_msgs: u64,
    /// Messages delivered within their own rank.
    pub local_msgs: u64,
    /// Bytes that crossed the network.
    pub remote_bytes: u64,
    /// Aggregated network batches shipped.
    pub remote_batches: u64,
}

/// Headline numbers of the causality-DAG analysis (see `stanalyze`),
/// present when the solve ran with tracing enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathSummary {
    /// Dependent visits on the longest lineage chain.
    pub visits: u64,
    /// Wall-clock span of that chain, microseconds.
    pub span_us: u64,
    /// Total visits in the trace (the chain's denominator).
    pub total_visits: u64,
    /// Whether the causality graph verified acyclic.
    pub acyclic: bool,
}

impl CriticalPathSummary {
    fn to_json(self) -> Json {
        Json::obj()
            .with("visits", self.visits)
            .with("span_us", self.span_us)
            .with("total_visits", self.total_visits)
            .with("acyclic", self.acyclic)
    }
}

/// The unified machine-readable summary of one solve.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Fingerprint of the configuration the solve ran with.
    pub config: ConfigFingerprint,
    /// `(phase name, microseconds)` in execution order — barrier-bound
    /// max across ranks, like [`SolveReport::phase_times`].
    pub phase_times_us: Vec<(&'static str, u64)>,
    /// Sum of phase maxima, microseconds (the time-to-solution metric).
    pub total_time_us: u64,
    /// Cluster-wide per-phase message counters, keyed by phase label.
    pub message_counts: Vec<(&'static str, PhaseCounters)>,
    /// Bytes of the partitioned graph across all ranks (Fig 8 "graph").
    pub graph_bytes: usize,
    /// Peak algorithm-state bytes across all ranks (Fig 8 "states").
    pub state_peak_bytes: usize,
    /// Edges in the reduced distance graph `G_1'`.
    pub distance_graph_edges: usize,
    /// Visitors processed per rank (the work metric behind speedup).
    pub rank_work: Vec<u64>,
    /// Stale Voronoi relaxations per rank, dropped unvisited by the
    /// ordered disciplines' pop-time filter (v4; all-zero under
    /// FIFO/adversarial queues).
    pub stale_drops: Vec<u64>,
    /// Work-based simulated speedup (Fig 3's scaling metric).
    pub simulated_speedup: f64,
    /// Most-loaded rank's work divided by the mean — 1.0 is perfectly
    /// balanced, `num_ranks` is one rank doing everything.
    pub imbalance_ratio: f64,
    /// Causality-DAG headline numbers; `None` when the solve ran
    /// without tracing.
    pub critical_path: Option<CriticalPathSummary>,
    /// `{phase: {metric: {p50, p90, p99, count}}}` quantiles from the
    /// latency histograms; `None` when the solve ran without metrics.
    pub latency_quantiles: Option<Json>,
    /// Fault-injection and reliability-protocol counters; all-zero for a
    /// fault-free run (the v3 schema always emits the object).
    pub fault_stats: struntime::FaultSnapshot,
    /// Columnar per-rank gauge time series (`null` when the solve ran
    /// with telemetry off; v5).
    pub timeseries: Option<Json>,
    /// Per-phase peak-memory watermarks with attribution (`null` when
    /// the solve ran with telemetry off; v5).
    pub peak_memory: Option<Json>,
    /// Crash-recovery counters (v6; all-zero for an undisturbed solve).
    pub recovery: crate::RecoveryStats,
    /// Borůvka round counters (v7; `None` for replicated solves, which
    /// render as `null`).
    pub boruvka: Option<crate::BoruvkaStats>,
    /// Number of seed (terminal) vertices in the tree.
    pub tree_num_seeds: usize,
    /// Number of edges in the tree.
    pub tree_num_edges: usize,
    /// Total tree weight `D(G_S)`.
    pub tree_total_distance: u64,
}

impl RunReport {
    /// Renders the report to JSON (see the module docs for the schema
    /// stability rules). Top-level keys: `schema_version`, `config`,
    /// `phase_times_us`, `total_time_us`, `message_counts`,
    /// `graph_bytes`, `state_peak_bytes`, `distance_graph_edges`,
    /// `rank_work`, `stale_drops`, `simulated_speedup`,
    /// `imbalance_ratio`, `critical_path`, `latency_quantiles`, `faults`,
    /// `timeseries`, `peak_memory`, `recovery`, `boruvka`, `tree`.
    pub fn to_json(&self) -> Json {
        let mut phase_times = Json::obj();
        for &(name, us) in &self.phase_times_us {
            phase_times.insert(name, us);
        }
        let mut counts = Json::obj();
        for &(name, c) in &self.message_counts {
            counts.insert(
                name,
                Json::obj()
                    .with("remote_msgs", c.remote_msgs)
                    .with("local_msgs", c.local_msgs)
                    .with("remote_bytes", c.remote_bytes)
                    .with("remote_batches", c.remote_batches),
            );
        }
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("config", self.config.to_json())
            .with("phase_times_us", phase_times)
            .with("total_time_us", self.total_time_us)
            .with("message_counts", counts)
            .with("graph_bytes", self.graph_bytes)
            .with("state_peak_bytes", self.state_peak_bytes)
            .with("distance_graph_edges", self.distance_graph_edges)
            .with(
                "rank_work",
                Json::Arr(self.rank_work.iter().map(|&w| Json::from(w)).collect()),
            )
            .with(
                "stale_drops",
                Json::obj()
                    .with("total", self.stale_drops.iter().sum::<u64>())
                    .with(
                        "per_rank",
                        Json::Arr(self.stale_drops.iter().map(|&d| Json::from(d)).collect()),
                    ),
            )
            .with("simulated_speedup", self.simulated_speedup)
            .with("imbalance_ratio", self.imbalance_ratio)
            .with(
                "critical_path",
                self.critical_path.map(CriticalPathSummary::to_json),
            )
            .with(
                "latency_quantiles",
                self.latency_quantiles.clone().unwrap_or(Json::Null),
            )
            .with(
                "faults",
                Json::obj()
                    .with("drops", self.fault_stats.drops)
                    .with("dups", self.fault_stats.dups)
                    .with("delays", self.fault_stats.delays)
                    .with("stalls", self.fault_stats.stalls)
                    .with("retransmits", self.fault_stats.retransmits)
                    .with("dedup_discards", self.fault_stats.dedup_discards)
                    .with("acks", self.fault_stats.acks)
                    .with("retries", self.fault_stats.retries),
            )
            .with("timeseries", self.timeseries.clone().unwrap_or(Json::Null))
            .with(
                "peak_memory",
                self.peak_memory.clone().unwrap_or(Json::Null),
            )
            .with(
                "recovery",
                Json::obj()
                    .with("crashes_injected", self.recovery.crashes_injected)
                    .with("checkpoints_taken", self.recovery.checkpoints_taken)
                    .with("checkpoint_bytes", self.recovery.checkpoint_bytes)
                    .with("restores", self.recovery.restores)
                    .with("replayed_phases", self.recovery.replayed_phases)
                    .with("aborted_ranks", self.recovery.aborted_ranks),
            )
            .with(
                "boruvka",
                match &self.boruvka {
                    None => Json::Null,
                    Some(b) => Json::obj()
                        .with("rounds", b.rounds)
                        .with(
                            "edges_reduced",
                            Json::Arr(b.edges_reduced.iter().map(|&n| Json::from(n)).collect()),
                        )
                        .with(
                            "components",
                            Json::Arr(b.components.iter().map(|&n| Json::from(n)).collect()),
                        ),
                },
            )
            .with(
                "tree",
                Json::obj()
                    .with("num_seeds", self.tree_num_seeds)
                    .with("num_edges", self.tree_num_edges)
                    .with("total_distance", self.tree_total_distance),
            )
    }
}

/// Renders the per-phase peak-memory watermarks from a telemetry dump:
/// one object per phase (keyed by phase name), attributing the peak to
/// `queue_bytes` (visitor queue), `arena_bytes` (scratch arena),
/// `reliability_bytes` (unacked retransmission buffers), and the rank's
/// tracked `total_bytes` high-water mark. Phase ids outside
/// [`Phase::ALL`] (a runtime user's custom marks) render as
/// `"phase_<id>"`.
pub fn peak_memory_json(dump: &TelemetryDump) -> Json {
    let mut out = Json::obj();
    for (phase, peaks) in dump.phase_peaks() {
        let name = Phase::from_index(phase as usize)
            .map(|p| p.name().to_string())
            .unwrap_or_else(|| format!("phase_{phase}"));
        out.insert(
            &name,
            Json::obj()
                .with("queue_bytes", peaks[Gauge::QueueBytes as usize])
                .with("arena_bytes", peaks[Gauge::ArenaBytes as usize])
                .with("reliability_bytes", peaks[Gauge::ReliabilityBytes as usize])
                .with("total_bytes", peaks[Gauge::MemTotalBytes as usize]),
        );
    }
    out
}

impl SolveReport {
    /// Condenses this solve into its machine-readable [`RunReport`].
    ///
    /// When the solve ran with tracing, the causality DAG is analyzed
    /// here (via `stanalyze`) to fill `critical_path`; with metrics,
    /// histogram quantiles fill `latency_quantiles`. Both are `None`
    /// otherwise — the v2 schema keeps the keys, as `null`.
    pub fn run_report(&self) -> RunReport {
        let phase_times_us: Vec<(&'static str, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p.name(), self.phase_times[p].as_micros() as u64))
            .collect();
        let message_counts: Vec<(&'static str, PhaseCounters)> = self
            .message_counts
            .iter()
            .map(|(&name, snap)| {
                (
                    name,
                    PhaseCounters {
                        remote_msgs: snap.remote_msgs,
                        local_msgs: snap.local_msgs,
                        remote_bytes: snap.remote_bytes,
                        remote_batches: snap.remote_batches,
                    },
                )
            })
            .collect();
        let critical_path = if self.trace.is_empty() {
            None
        } else {
            let analysis = stanalyze::analyze(&stanalyze::model_from_dump(&self.trace));
            Some(CriticalPathSummary {
                visits: analysis.critical_path.visits,
                span_us: analysis.critical_path.span_us,
                total_visits: analysis.total_visits,
                acyclic: analysis.acyclic,
            })
        };
        let latency_quantiles = if self.metrics.is_empty() {
            None
        } else {
            Some(self.metrics.quantiles_json())
        };
        let (timeseries, peak_memory) = if self.telemetry.is_empty() {
            (None, None)
        } else {
            (
                Some(self.telemetry.to_json()),
                Some(peak_memory_json(&self.telemetry)),
            )
        };
        let total_work: u64 = self.rank_work.iter().sum();
        let max_work = self.rank_work.iter().copied().max().unwrap_or(0);
        let imbalance_ratio = if total_work == 0 || self.rank_work.is_empty() {
            1.0
        } else {
            max_work as f64 * self.rank_work.len() as f64 / total_work as f64
        };
        RunReport {
            config: ConfigFingerprint::of(&self.config),
            phase_times_us,
            total_time_us: self.time_to_solution().as_micros() as u64,
            message_counts,
            graph_bytes: self.graph_bytes,
            state_peak_bytes: self.state_peak_bytes,
            distance_graph_edges: self.distance_graph_edges,
            rank_work: self.rank_work.clone(),
            stale_drops: self.stale_drops.clone(),
            simulated_speedup: self.simulated_speedup(),
            imbalance_ratio,
            critical_path,
            latency_quantiles,
            fault_stats: self.fault_stats,
            timeseries,
            peak_memory,
            recovery: self.recovery,
            boruvka: self.boruvka.clone(),
            tree_num_seeds: self.tree.seeds.len(),
            tree_num_edges: self.tree.num_edges(),
            tree_total_distance: self.tree.total_distance(),
        }
    }
}

/// Validates one `RunReport` JSON document against the current schema.
/// This is the single definition of the v6 contract — the bench
/// envelope validator and `xtask check-reports` both call it — kept
/// next to the writer ([`RunReport::to_json`]) so the two cannot drift.
/// Historical versions are rejected with a migration note.
pub fn validate_run(run: &Json) -> Result<(), String> {
    match run.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(1) => {
            return Err(
                "schema_version 1 report found; v2 adds imbalance_ratio, critical_path, \
                 and latency_quantiles (no v1 key was removed or renamed) — regenerate \
                 the report with current binaries to migrate"
                    .to_string(),
            );
        }
        Some(2) => {
            return Err(
                "schema_version 2 report found; v3 adds the faults object (injection and \
                 reliability-protocol counters) and config.faults (no v2 key was removed \
                 or renamed) — regenerate the report with current binaries to migrate"
                    .to_string(),
            );
        }
        Some(3) => {
            return Err(
                "schema_version 3 report found; v4 adds the stale_drops object (total plus \
                 per_rank relaxations dropped by the ordered queues' pop-time filter) and \
                 the bucketed:DELTA form of config.queue (no v3 key was removed or renamed) \
                 — regenerate the report with current binaries to migrate"
                    .to_string(),
            );
        }
        Some(4) => {
            return Err(
                "schema_version 4 report found; v5 adds timeseries (per-rank gauge time \
                 series, null when telemetry was off) and peak_memory (per-phase \
                 peak-memory watermarks attributed to queue/arena/reliability buffers) \
                 (no v4 key was removed or renamed) — regenerate the report with current \
                 binaries to migrate"
                    .to_string(),
            );
        }
        Some(5) => {
            return Err(
                "schema_version 5 report found; v6 adds the recovery object \
                 (crashes_injected, checkpoints_taken, checkpoint_bytes, restores, \
                 replayed_phases, aborted_ranks — all-zero for an undisturbed solve) \
                 (no v5 key was removed or renamed) — regenerate the report with current \
                 binaries to migrate"
                    .to_string(),
            );
        }
        Some(6) => {
            return Err(
                "schema_version 6 report found; v7 adds config.mst_mode (replicated or \
                 dist) and the boruvka object (rounds, edges_reduced, components — null \
                 for replicated solves) (no v6 key was removed or renamed) — regenerate \
                 the report with current binaries to migrate"
                    .to_string(),
            );
        }
        _ => {
            return Err(format!("schema_version must be {SCHEMA_VERSION}"));
        }
    }
    let config = run.get("config").ok_or("missing config")?;
    config
        .get("num_ranks")
        .and_then(|v| v.as_u64())
        .filter(|&p| p >= 1)
        .ok_or("config.num_ranks must be a positive integer")?;
    config
        .get("queue")
        .and_then(|v| v.as_str())
        .ok_or("config.queue must be a string")?;
    config
        .get("mst_mode")
        .and_then(|v| v.as_str())
        .ok_or("config.mst_mode must be a string (\"replicated\" or \"dist\")")?;
    let phases = run.get("phase_times_us").ok_or("missing phase_times_us")?;
    for p in Phase::ALL {
        phases
            .get(p.name())
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("phase_times_us.{} must be integer microseconds", p.name()))?;
    }
    run.get("total_time_us")
        .and_then(|v| v.as_u64())
        .ok_or("total_time_us must be integer microseconds")?;
    run.get("message_counts")
        .and_then(|v| v.as_obj())
        .ok_or("message_counts must be an object")?;
    for key in ["graph_bytes", "state_peak_bytes", "distance_graph_edges"] {
        run.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("{key} must be an integer"))?;
    }
    let work = run
        .get("rank_work")
        .and_then(|v| v.as_arr())
        .ok_or("rank_work must be an array")?;
    if work.iter().any(|w| w.as_u64().is_none()) {
        return Err("rank_work elements must be integers".to_string());
    }
    let stale = run.get("stale_drops").ok_or("missing stale_drops")?;
    stale
        .get("total")
        .and_then(|v| v.as_u64())
        .ok_or("stale_drops.total must be an integer")?;
    let per_rank = stale
        .get("per_rank")
        .and_then(|v| v.as_arr())
        .ok_or("stale_drops.per_rank must be an array")?;
    if per_rank.iter().any(|w| w.as_u64().is_none()) {
        return Err("stale_drops.per_rank elements must be integers".to_string());
    }
    run.get("simulated_speedup")
        .and_then(|v| v.as_f64())
        .ok_or("simulated_speedup must be a number")?;
    run.get("imbalance_ratio")
        .and_then(|v| v.as_f64())
        .filter(|&r| r >= 1.0)
        .ok_or("imbalance_ratio must be a number >= 1.0")?;
    let cp = run.get("critical_path").ok_or("missing critical_path")?;
    if !cp.is_null() {
        for key in ["visits", "span_us", "total_visits"] {
            cp.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("critical_path.{key} must be an integer"))?;
        }
        cp.get("acyclic")
            .and_then(|v| v.as_bool())
            .ok_or("critical_path.acyclic must be a bool")?;
    }
    let lq = run
        .get("latency_quantiles")
        .ok_or("missing latency_quantiles")?;
    if !lq.is_null() && lq.as_obj().is_none() {
        return Err("latency_quantiles must be null or an object".to_string());
    }
    let faults = run.get("faults").ok_or("missing faults")?;
    for key in [
        "drops",
        "dups",
        "delays",
        "stalls",
        "retransmits",
        "dedup_discards",
        "acks",
        "retries",
    ] {
        faults
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("faults.{key} must be an integer"))?;
    }
    config
        .get("faults")
        .and_then(|v| v.as_str())
        .ok_or("config.faults must be a string (a fault-plan spec or \"off\")")?;
    let ts = run.get("timeseries").ok_or("missing timeseries")?;
    if !ts.is_null() {
        validate_timeseries(ts).map_err(|e| format!("timeseries: {e}"))?;
    }
    let pm = run.get("peak_memory").ok_or("missing peak_memory")?;
    if !pm.is_null() {
        let phases = pm.as_obj().ok_or("peak_memory must be null or an object")?;
        for (phase, peaks) in phases {
            for key in [
                "queue_bytes",
                "arena_bytes",
                "reliability_bytes",
                "total_bytes",
            ] {
                peaks
                    .get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("peak_memory.{phase}.{key} must be an integer"))?;
            }
        }
    }
    let recovery = run.get("recovery").ok_or("missing recovery")?;
    for key in [
        "crashes_injected",
        "checkpoints_taken",
        "checkpoint_bytes",
        "restores",
        "replayed_phases",
        "aborted_ranks",
    ] {
        recovery
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("recovery.{key} must be an integer"))?;
    }
    let boruvka = run.get("boruvka").ok_or("missing boruvka")?;
    if !boruvka.is_null() {
        boruvka
            .get("rounds")
            .and_then(|v| v.as_u64())
            .ok_or("boruvka.rounds must be an integer")?;
        for key in ["edges_reduced", "components"] {
            let col = boruvka
                .get(key)
                .and_then(|v| v.as_arr())
                .ok_or_else(|| format!("boruvka.{key} must be an array"))?;
            if col.iter().any(|n| n.as_u64().is_none()) {
                return Err(format!("boruvka.{key} elements must be integers"));
            }
        }
    }
    let tree = run.get("tree").ok_or("missing tree")?;
    for key in ["num_seeds", "num_edges", "total_distance"] {
        tree.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("tree.{key} must be an integer"))?;
    }
    Ok(())
}

/// Validates a [`struntime::telemetry`] columnar time-series object (the
/// `timeseries` section of a v5 report and of a flight-recorder dump):
/// `sample_every` plus per-rank columns of equal length.
fn validate_timeseries(ts: &Json) -> Result<(), String> {
    ts.get("sample_every")
        .and_then(|v| v.as_u64())
        .ok_or("sample_every must be an integer")?;
    let ranks = ts
        .get("ranks")
        .and_then(|v| v.as_arr())
        .ok_or("ranks must be an array")?;
    for (i, rank) in ranks.iter().enumerate() {
        let check = |e: String| format!("ranks[{i}]: {e}");
        rank.get("rank")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| check("rank must be an integer".into()))?;
        rank.get("dropped")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| check("dropped must be an integer".into()))?;
        let steps = rank
            .get("steps")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| check("steps must be an array".into()))?;
        let phases = rank
            .get("phases")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| check("phases must be an array".into()))?;
        if phases.len() != steps.len() {
            return Err(check("phases and steps lengths differ".into()));
        }
        let gauges = rank
            .get("gauges")
            .and_then(|v| v.as_obj())
            .ok_or_else(|| check("gauges must be an object".into()))?;
        for (name, col) in gauges {
            let col = col
                .as_arr()
                .ok_or_else(|| check(format!("gauges.{name} must be an array")))?;
            if col.len() != steps.len() {
                return Err(check(format!(
                    "gauges.{name} length {} != steps length {}",
                    col.len(),
                    steps.len()
                )));
            }
        }
    }
    Ok(())
}

/// Validates a flight-recorder dump (`FLIGHT_<reason>_<n>.json`, written
/// by [`struntime::write_flight_dump`] when a solve panics, fails a
/// phase, or trips the audit ledger). Returns the number of ranks in the
/// dump on success.
pub fn validate_flight(doc: &Json) -> Result<usize, String> {
    let want = struntime::telemetry::FLIGHT_SCHEMA_VERSION;
    match doc.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == want => {}
        _ => return Err(format!("schema_version must be {want}")),
    }
    if doc.get("kind").and_then(|v| v.as_str()) != Some("flight_recorder") {
        return Err("kind must be \"flight_recorder\"".to_string());
    }
    doc.get("reason")
        .and_then(|v| v.as_str())
        .filter(|s| !s.is_empty())
        .ok_or("reason must be a non-empty string")?;
    let num_ranks = doc
        .get("num_ranks")
        .and_then(|v| v.as_u64())
        .ok_or("num_ranks must be an integer")?;
    let ts = doc.get("timeseries").ok_or("missing timeseries")?;
    validate_timeseries(ts).map_err(|e| format!("timeseries: {e}"))?;
    let got = ts
        .get("ranks")
        .and_then(|v| v.as_arr())
        .map(|a| a.len())
        .unwrap_or(0);
    if got as u64 != num_ranks {
        return Err(format!(
            "num_ranks {num_ranks} disagrees with {got} timeseries ranks"
        ));
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, QueueKind};
    use stgraph::builder::GraphBuilder;
    use stgraph::csr::Vertex;

    fn sample_report() -> SolveReport {
        let mut b = GraphBuilder::new(8);
        for i in 0..7 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            queue: QueueKind::Adversarial { seed: 99 },
            reduce_mode: ReduceModeConfig::Dense { chunk: Some(16) },
            ..SolverConfig::default()
        };
        solve(&g, &[0, 7], &cfg).unwrap()
    }

    #[test]
    fn fingerprint_encodes_config() {
        let fp = sample_report().run_report().config;
        assert_eq!(fp.num_ranks, 2);
        assert_eq!(fp.queue, "adversarial:99");
        assert_eq!(fp.reduce_mode, "dense(chunk=16)");
        assert_eq!(fp.mst_mode, "replicated");
        assert!(!fp.refine);
    }

    #[test]
    fn run_report_json_has_stable_shape() {
        let doc = sample_report().run_report().to_json();
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        let phases = doc.get("phase_times_us").expect("phase times");
        for p in Phase::ALL {
            assert!(
                phases.get(p.name()).and_then(|v| v.as_u64()).is_some(),
                "missing phase {}",
                p.name()
            );
        }
        let tree = doc.get("tree").expect("tree object");
        assert_eq!(tree.get("num_seeds").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(tree.get("num_edges").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(
            tree.get("total_distance").and_then(|v| v.as_u64()),
            Some(14)
        );
        assert_eq!(
            doc.get("rank_work")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(2)
        );
        assert!(doc
            .get("simulated_speedup")
            .and_then(|v| v.as_f64())
            .is_some());
        // Round-trips through the parser.
        let text = doc.to_pretty();
        assert_eq!(stgraph::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn v2_observability_fields_null_without_trace_or_metrics() {
        let report = sample_report().run_report();
        assert!(report.critical_path.is_none());
        assert!(report.latency_quantiles.is_none());
        assert!(report.imbalance_ratio >= 1.0);
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        assert!(doc.get("critical_path").expect("key present").is_null());
        assert!(doc.get("latency_quantiles").expect("key present").is_null());
        assert!(doc
            .get("imbalance_ratio")
            .and_then(|v| v.as_f64())
            .is_some());
    }

    #[test]
    fn v3_faults_object_zero_and_config_off_without_injection() {
        let report = sample_report().run_report();
        assert_eq!(report.config.faults, "off");
        assert_eq!(report.fault_stats, struntime::FaultSnapshot::default());
        let doc = report.to_json();
        let faults = doc.get("faults").expect("v3 emits the faults object");
        for key in [
            "drops",
            "dups",
            "delays",
            "stalls",
            "retransmits",
            "dedup_discards",
            "acks",
            "retries",
        ] {
            assert_eq!(
                faults.get(key).and_then(|v| v.as_u64()),
                Some(0),
                "fault counter {key} nonzero in a fault-free run"
            );
        }
        assert_eq!(
            doc.get("config")
                .and_then(|c| c.get("faults"))
                .and_then(|v| v.as_str()),
            Some("off")
        );
    }

    #[test]
    fn v3_faults_object_counts_injection() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let plan = struntime::FaultPlan::from_spec("drop=0.2,dup=0.1,seed=7").unwrap();
        let cfg = SolverConfig {
            num_ranks: 2,
            faults: Some(plan),
            ..SolverConfig::default()
        };
        let report = solve(&g, &[0, 7], &cfg).unwrap().run_report();
        assert_eq!(report.config.faults, plan.to_spec());
        assert!(
            report.fault_stats.injected() > 0,
            "an active plan over remote traffic should inject something"
        );
        let doc = report.to_json();
        let drops = doc
            .get("faults")
            .and_then(|f| f.get("drops"))
            .and_then(|v| v.as_u64())
            .unwrap();
        assert_eq!(drops, report.fault_stats.drops);
    }

    #[test]
    fn v2_observability_fields_populated_with_trace_and_metrics() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            trace: struntime::TraceConfig::ring(),
            metrics: struntime::MetricsConfig::On,
            ..SolverConfig::default()
        };
        let report = solve(&g, &[0, 7], &cfg).unwrap().run_report();
        let cp = report
            .critical_path
            .expect("traced solve has critical path");
        assert!(cp.acyclic);
        assert!(cp.visits > 0);
        assert!(cp.visits <= cp.total_visits);
        let lq = report.latency_quantiles.clone().expect("metrics quantiles");
        // At least the voronoi traversal recorded visit-service samples.
        assert!(lq
            .get("voronoi")
            .and_then(|p| p.get("visit_service_us"))
            .and_then(|m| m.get("count"))
            .and_then(|c| c.as_u64())
            .is_some_and(|c| c > 0));
        // The JSON twin round-trips.
        let doc = report.to_json();
        let text = doc.to_pretty();
        assert_eq!(stgraph::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn v4_stale_drops_object_and_bucketed_fingerprint() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            queue: QueueKind::Bucketed { delta: 3 },
            ..SolverConfig::default()
        };
        let report = solve(&g, &[0, 7], &cfg).unwrap().run_report();
        assert_eq!(report.config.queue, "bucketed:3");
        assert_eq!(report.stale_drops.len(), 2);
        let doc = report.to_json();
        let sd = doc.get("stale_drops").expect("v4 emits stale_drops");
        assert_eq!(
            sd.get("total").and_then(|v| v.as_u64()),
            Some(report.stale_drops.iter().sum::<u64>())
        );
        assert_eq!(
            sd.get("per_rank").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn v5_telemetry_fields_null_without_telemetry() {
        let report = sample_report().run_report();
        assert!(report.timeseries.is_none());
        assert!(report.peak_memory.is_none());
        let doc = report.to_json();
        assert!(doc.get("timeseries").expect("key present").is_null());
        assert!(doc.get("peak_memory").expect("key present").is_null());
        assert!(validate_run(&doc).is_ok());
    }

    #[test]
    fn v5_telemetry_fields_populated_and_validate() {
        let mut b = GraphBuilder::new(12);
        for i in 0..11 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            telemetry: crate::TelemetryConfig::Ring {
                sample_every: 1,
                monitor: false,
            },
            ..SolverConfig::default()
        };
        let report = solve(&g, &[0, 11], &cfg).unwrap().run_report();
        let doc = report.to_json();
        validate_run(&doc).expect("v5 report with telemetry validates");
        let ts = doc.get("timeseries").unwrap();
        assert!(!ts.is_null());
        assert_eq!(
            ts.get("ranks").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(2)
        );
        let pm = doc.get("peak_memory").unwrap();
        // Every phase was marked, so every phase name keys a watermark.
        let voronoi = pm.get("voronoi").expect("voronoi watermark");
        assert!(voronoi
            .get("total_bytes")
            .and_then(|v| v.as_u64())
            .is_some());
        assert!(voronoi
            .get("queue_bytes")
            .and_then(|v| v.as_u64())
            .is_some());
        // Round-trips through the parser and still validates.
        let reparsed = stgraph::json::parse(&doc.to_pretty()).unwrap();
        assert!(validate_run(&reparsed).is_ok());
    }

    #[test]
    fn v4_run_report_rejected_with_migration_note() {
        let mut doc = sample_report().run_report().to_json();
        doc.insert("schema_version", 4u64);
        let err = validate_run(&doc).unwrap_err();
        assert!(err.contains("schema_version 4"), "{err}");
        assert!(err.contains("timeseries"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v5_run_report_rejected_with_migration_note() {
        let mut doc = sample_report().run_report().to_json();
        doc.insert("schema_version", 5u64);
        let err = validate_run(&doc).unwrap_err();
        assert!(err.contains("schema_version 5"), "{err}");
        assert!(err.contains("recovery"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v6_recovery_section_emitted_and_required() {
        let doc = sample_report().run_report().to_json();
        let recovery = doc.get("recovery").expect("recovery object present");
        for key in [
            "crashes_injected",
            "checkpoints_taken",
            "checkpoint_bytes",
            "restores",
            "replayed_phases",
            "aborted_ranks",
        ] {
            assert_eq!(
                recovery.get(key).and_then(|v| v.as_u64()),
                Some(0),
                "undisturbed solve must report recovery.{key} = 0"
            );
        }
        assert!(validate_run(&doc).is_ok());
        // A report missing the section (or with a non-integer counter) is
        // rejected — the section is mandatory even when all-zero.
        let mut missing = sample_report().run_report().to_json();
        if let Json::Obj(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "recovery");
        }
        let err = validate_run(&missing).unwrap_err();
        assert!(err.contains("recovery"), "{err}");
        let mut bad = sample_report().run_report().to_json();
        bad.insert("recovery", Json::from("nope"));
        let err = validate_run(&bad).unwrap_err();
        assert!(err.contains("recovery"), "{err}");
    }

    #[test]
    fn v6_run_report_rejected_with_migration_note() {
        let mut doc = sample_report().run_report().to_json();
        doc.insert("schema_version", 6u64);
        let err = validate_run(&doc).unwrap_err();
        assert!(err.contains("schema_version 6"), "{err}");
        assert!(err.contains("mst_mode"), "{err}");
        assert!(err.contains("boruvka"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v7_boruvka_null_for_replicated_solves() {
        let report = sample_report().run_report();
        assert!(report.boruvka.is_none());
        let doc = report.to_json();
        assert!(doc.get("boruvka").expect("key present").is_null());
        assert!(validate_run(&doc).is_ok());
        // The section is mandatory: a report missing the key is rejected.
        let mut missing = sample_report().run_report().to_json();
        if let Json::Obj(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "boruvka");
        }
        let err = validate_run(&missing).unwrap_err();
        assert!(err.contains("boruvka"), "{err}");
    }

    #[test]
    fn v7_boruvka_section_populated_for_dist_solves_and_validates() {
        let mut b = GraphBuilder::new(10);
        for i in 0..9 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            mst_mode: crate::MstMode::Dist,
            ..SolverConfig::default()
        };
        let report = solve(&g, &[0, 4, 9], &cfg).unwrap().run_report();
        assert_eq!(report.config.mst_mode, "dist");
        let stats = report.boruvka.as_ref().expect("dist solve records rounds");
        assert!(stats.rounds > 0);
        assert_eq!(stats.edges_reduced.len(), stats.rounds as usize);
        assert_eq!(stats.components.len(), stats.rounds as usize);
        let doc = report.to_json();
        validate_run(&doc).expect("v7 dist report validates");
        let bv = doc.get("boruvka").unwrap();
        assert_eq!(
            bv.get("rounds").and_then(|v| v.as_u64()),
            Some(stats.rounds)
        );
        assert_eq!(
            bv.get("components")
                .and_then(|v| v.as_arr())
                .and_then(|a| a.last().cloned())
                .and_then(|v| v.as_u64()),
            Some(1),
            "a connected solve ends at one component"
        );
        // Round-trips through the parser and still validates.
        let reparsed = stgraph::json::parse(&doc.to_pretty()).unwrap();
        assert!(validate_run(&reparsed).is_ok());
    }

    #[test]
    fn flight_dump_validates() {
        let mut b = GraphBuilder::new(8);
        for i in 0..7 {
            b.add_edge(i as Vertex, (i + 1) as Vertex, 2);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            telemetry: crate::TelemetryConfig::ring(),
            ..SolverConfig::default()
        };
        let solved = solve(&g, &[0, 7], &cfg).unwrap();
        let doc = solved.telemetry.flight_json("unit_test");
        assert_eq!(validate_flight(&doc), Ok(2));
        let reparsed = stgraph::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(validate_flight(&reparsed), Ok(2));
        // A run report is not a flight dump.
        assert!(validate_flight(&solved.run_report().to_json()).is_err());
    }

    #[test]
    fn message_counts_carry_voronoi_traffic() {
        let report = sample_report().run_report();
        let voronoi = report
            .message_counts
            .iter()
            .find(|(n, _)| *n == "voronoi")
            .expect("voronoi phase counted");
        assert!(voronoi.1.remote_msgs + voronoi.1.local_msgs > 0);
    }
}
