//! Distributed asynchronous Voronoi-cell computation (Alg 4).
//!
//! Bellman-Ford-style label-correcting relaxation run through the
//! vertex-centric traversal driver. Each vertex converges to the label
//! `(d_1(s, v), s, pred)` of its nearest seed `s`; the optional priority
//! queue (the paper's §IV optimization) processes lower-distance messages
//! first, approximating Dijkstra's settle order and slashing wasted
//! relaxations (§V-C).
//!
//! Delegate (hub) vertices have a replica on every rank (HavoqGT's
//! vertex-cut). A relaxation targeting a delegate is applied to the
//! *local* replica — no network hop, no controller hotspot — and, when it
//! improves, broadcast so every rank can update its replica and relax its
//! slice of the hub's adjacency. All replicas converge to the same label:
//! every improvement anyone generates is broadcast, updates are strict
//! lexicographic minima, and min is order-independent. Thus the fixpoint —
//! and therefore the final Steiner tree — is independent of message timing
//! and of which rank discovered an improvement first.
//!
//! ## Stale-relaxation filtering
//!
//! Under the ordered queue disciplines (priority, bucketed) the traversal
//! applies a staleness predicate at pop time: a queued `Relax` or
//! `DelegateUpdate` whose candidate label is already `>=` the target's
//! current label can never pass `try_improve`, so it is dropped without a
//! visit (counted in `TraversalStats::stale_dropped`). The predicate is
//! monotone — labels only shrink, so a dominated message stays dominated —
//! which makes the drop safe: it removes exactly the visits that would
//! have been no-ops, leaving the label fixpoint (and the tree) bit-
//! identical across disciplines.

use crate::messages::VoronoiMsg;
use crate::state::{Label, ScratchArena, VertexStates};
use std::cell::RefCell;
use stgraph::csr::{Vertex, Weight};
use stgraph::partition::{BlockPartition, RankGraph};
use struntime::traversal::{run_traversal_filtered, TraversalOptions};
use struntime::{ChannelGroup, Comm, Pusher, TraversalStats};

/// Runs the Voronoi phase to quiescence on this rank. Collective.
/// `scratch` provides the reusable bootstrap buffer so repeated solves
/// (fault retries, benchmark sweeps) do not re-allocate per phase.
#[allow(clippy::too_many_arguments)] // collective phase entry: ctx + graph views + state + knobs
pub fn run(
    comm: &Comm,
    chan: &ChannelGroup<Vec<VoronoiMsg>>,
    rg: &RankGraph,
    partition: &BlockPartition,
    states: &mut VertexStates,
    seeds: &[Vertex],
    options: TraversalOptions,
    scratch: &mut ScratchArena,
) -> TraversalStats {
    states.init_seeds(seeds);

    // Bootstrap: this rank starts every seed whose outgoing arcs it holds —
    // owned non-delegate seeds, plus every delegate seed (each rank holds a
    // slice of a delegate's adjacency).
    let init = scratch.init_msgs();
    init.extend(
        seeds
            .iter()
            .copied()
            .filter(|&s| rg.is_delegate(s) || rg.owns(s))
            .map(VoronoiMsg::Start),
    );

    // The stale predicate and the visit callback both need the vertex
    // states (read-only vs. mutable); a RefCell arbitrates. The borrows
    // never overlap: the traversal calls the predicate and the visit
    // callback strictly in sequence on one thread.
    let states = RefCell::new(states);
    run_traversal_filtered(
        comm,
        chan,
        options,
        VoronoiMsg::priority,
        |msg: &VoronoiMsg| match *msg {
            // Bootstraps are never stale: they carry no candidate label.
            VoronoiMsg::Start(_) => false,
            VoronoiMsg::Relax { target, label, .. }
            | VoronoiMsg::DelegateUpdate { target, label, .. } => {
                let st = states.borrow();
                st.holds(target) && label >= st.label(target)
            }
        },
        init.iter().copied(),
        |msg, pusher| visit(msg, rg, partition, &mut states.borrow_mut(), pusher),
    )
}

fn visit(
    msg: VoronoiMsg,
    rg: &RankGraph,
    partition: &BlockPartition,
    states: &mut VertexStates,
    pusher: &mut Pusher<'_, VoronoiMsg>,
) {
    match msg {
        VoronoiMsg::Start(s) => {
            let label = Label::seed(s);
            relax_out_arcs(s, label, rg, partition, pusher);
        }
        VoronoiMsg::Relax {
            target,
            label,
            pred_weight,
        } => {
            if states.try_improve(target, label, pred_weight) {
                if rg.is_delegate(target) {
                    // Local replica improved: sync the other replicas,
                    // then relax this rank's slice of the hub's adjacency.
                    pusher.trace_instant("delegate_broadcast", target as u64);
                    for dest in 0..partition.num_ranks() {
                        if dest != pusher.rank() {
                            pusher.push(
                                dest,
                                VoronoiMsg::DelegateUpdate {
                                    target,
                                    label,
                                    pred_weight,
                                },
                            );
                        }
                    }
                }
                relax_out_arcs(target, label, rg, partition, pusher);
            }
        }
        VoronoiMsg::DelegateUpdate {
            target,
            label,
            pred_weight,
        } => {
            // Replica update; priority-queue reordering can deliver a newer
            // (better) update first, in which case the older one is a no-op.
            if states.try_improve(target, label, pred_weight) {
                relax_out_arcs(target, label, rg, partition, pusher);
            }
        }
    }
}

/// Relaxes every outgoing arc of `v` that this rank holds, given `v`'s
/// (just-updated) label.
fn relax_out_arcs(
    v: Vertex,
    label: Label,
    rg: &RankGraph,
    partition: &BlockPartition,
    pusher: &mut Pusher<'_, VoronoiMsg>,
) {
    let emit = |nbr: Vertex, w: Weight, pusher: &mut Pusher<'_, VoronoiMsg>| {
        let msg = VoronoiMsg::Relax {
            target: nbr,
            label: Label {
                dist: label.dist + w,
                src: label.src,
                pred: v,
            },
            pred_weight: w,
        };
        // Delegate targets are relaxed against the local replica (every
        // rank holds one); everything else routes to its owner.
        let dest = if rg.is_delegate(nbr) {
            pusher.rank()
        } else {
            partition.owner(nbr)
        };
        pusher.push(dest, msg);
    };
    if rg.is_delegate(v) {
        for &(nbr, w) in rg.delegate_slice(v) {
            emit(nbr, w, pusher);
        }
    } else {
        debug_assert!(rg.owns(v));
        for (nbr, w) in rg.adj(v) {
            emit(nbr, w, pusher);
        }
    }
}
