//! Sequential MST of the distance graph `G_1'` (Alg 3, Step 3).
//!
//! `G_1'` has at most `binom(|S|, 2)` edges — tiny next to the data graph —
//! so, following the paper (and Bader et al.'s small-problem cutoff), it is
//! solved sequentially with Prim's algorithm and replicated on every rank:
//! each rank computes the identical MST locally instead of shipping it.

use crate::distance_graph::{MinEdge, PairKey};
use stgraph::mst::{prim, AuxEdge};

/// Computes the MST of the distance graph. Returns the indices (into
/// `edges`) of the chosen distance-graph edges. Deterministic: ties break
/// on the same `(weight, si, ti)` ordering on every rank.
pub fn mst_of_distance_graph(num_seeds: usize, edges: &[(PairKey, MinEdge)]) -> Vec<usize> {
    let aux: Vec<AuxEdge> = edges
        .iter()
        .map(|&((si, ti), e)| (si, ti, e.total))
        .collect();
    prim(num_seeds, &aux)
}

/// Whether the MST spans all seeds (i.e. the seeds are mutually connected
/// in the data graph).
pub fn spans_all_seeds(num_seeds: usize, chosen: &[usize]) -> bool {
    chosen.len() + 1 == num_seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(total: u64) -> MinEdge {
        MinEdge {
            total,
            a: 0,
            b: 1,
            weight: 1,
        }
    }

    #[test]
    fn picks_cheapest_spanning_edges() {
        let edges = vec![
            ((0u32, 1u32), edge(5)),
            ((1, 2), edge(2)),
            ((0, 2), edge(4)),
        ];
        let chosen = mst_of_distance_graph(3, &edges);
        let mut totals: Vec<u64> = chosen.iter().map(|&i| edges[i].1.total).collect();
        totals.sort_unstable();
        assert_eq!(totals, vec![2, 4]);
        assert!(spans_all_seeds(3, &chosen));
    }

    #[test]
    fn detects_disconnection() {
        let edges = vec![((0u32, 1u32), edge(5))];
        let chosen = mst_of_distance_graph(3, &edges);
        assert!(!spans_all_seeds(3, &chosen));
    }

    #[test]
    fn single_pair() {
        let edges = vec![((0u32, 1u32), edge(7))];
        let chosen = mst_of_distance_graph(2, &edges);
        assert_eq!(chosen, vec![0]);
        assert!(spans_all_seeds(2, &chosen));
    }
}
