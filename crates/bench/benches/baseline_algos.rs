//! Criterion micro-benchmarks of the full Steiner pipelines: KMB vs WWW vs
//! Mehlhorn vs the distributed solver (Table VI in micro form) plus the
//! refinement ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner::{solve_partitioned, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::partition::partition_graph;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_pipelines");
    for dataset in [Dataset::Cts, Dataset::Mco] {
        let g = dataset.generate_tiny(17);
        let seeds = seeds::select(&g, 24, seeds::Strategy::BfsLevel, 3);
        group.bench_with_input(BenchmarkId::new("kmb", dataset.name()), &g, |b, g| {
            b.iter(|| baselines::kmb(g, &seeds).expect("connected"));
        });
        group.bench_with_input(BenchmarkId::new("www", dataset.name()), &g, |b, g| {
            b.iter(|| baselines::www(g, &seeds).expect("connected"));
        });
        group.bench_with_input(BenchmarkId::new("mehlhorn", dataset.name()), &g, |b, g| {
            b.iter(|| baselines::mehlhorn(g, &seeds).expect("connected"));
        });
        let pg = partition_graph(&g, 2, None);
        let cfg = SolverConfig {
            num_ranks: 2,
            ..SolverConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("distributed_2r", dataset.name()),
            &pg,
            |b, pg| {
                b.iter(|| solve_partitioned(pg, &seeds, &cfg).expect("connected"));
            },
        );
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_ablation");
    let g = Dataset::Lvj.generate_tiny(19);
    let seeds = seeds::select(&g, 32, seeds::Strategy::BfsLevel, 4);
    let pg = partition_graph(&g, 2, None);
    for (name, refine) in [("plain", false), ("refined", true)] {
        let cfg = SolverConfig {
            num_ranks: 2,
            refine,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines, bench_refinement);
criterion_main!(benches);
