//! Criterion micro-benchmarks of the SSSP kernel family underlying Voronoi
//! computation: Dijkstra vs Bellman-Ford vs Δ-stepping (the paper's §III
//! design discussion), across Δ values.

use baselines::delta_stepping::{default_delta, delta_stepping};
use baselines::shortest_path::{bellman_ford, dijkstra};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stgraph::datasets::Dataset;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp_kernels");
    for dataset in [Dataset::Lvj, Dataset::Ptn] {
        let g = dataset.generate_tiny(9);
        group.bench_with_input(BenchmarkId::new("dijkstra", dataset.name()), &g, |b, g| {
            b.iter(|| std::hint::black_box(dijkstra(g, 0)))
        });
        group.bench_with_input(
            BenchmarkId::new("bellman_ford", dataset.name()),
            &g,
            |b, g| b.iter(|| std::hint::black_box(bellman_ford(g, 0))),
        );
        let delta = default_delta(&g);
        group.bench_with_input(
            BenchmarkId::new("delta_stepping", dataset.name()),
            &g,
            |b, g| b.iter(|| std::hint::black_box(delta_stepping(g, 0, delta))),
        );
    }
    group.finish();
}

fn bench_delta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_sweep");
    let g = Dataset::Lvj.generate_tiny(9);
    let base = default_delta(&g);
    for (name, delta) in [
        ("quarter", base / 4 + 1),
        ("default", base),
        ("4x", base * 4),
        ("inf", u64::MAX / 4),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &delta, |b, &d| {
            b.iter(|| std::hint::black_box(delta_stepping(&g, 0, d)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_delta_sweep);
criterion_main!(benches);
