//! Criterion micro-benchmarks of the MST kernels used for the distance
//! graph `G_1'` — Prim (the paper's choice) vs Kruskal, across distance
//! graph densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph::mst::{kruskal, prim, AuxEdge};

/// Synthesizes a `G_1'`-shaped edge list: `k` seeds with `m` candidate
/// pairs carrying path-length weights.
fn distance_graph_edges(k: usize, m: usize, rng_seed: u64) -> Vec<AuxEdge> {
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..k as u32);
            let mut v = rng.gen_range(0..k as u32);
            if v == u {
                v = (v + 1) % k as u32;
            }
            (u, v, rng.gen_range(1..1_000_000u64))
        })
        .collect()
}

fn bench_mst_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst_distance_graph");
    for (k, m) in [(100usize, 2_000usize), (1000, 20_000), (1000, 200_000)] {
        let edges = distance_graph_edges(k, m, 42);
        group.bench_with_input(
            BenchmarkId::new("prim", format!("k{k}_m{m}")),
            &edges,
            |b, edges| b.iter(|| std::hint::black_box(prim(k, edges))),
        );
        group.bench_with_input(
            BenchmarkId::new("kruskal", format!("k{k}_m{m}")),
            &edges,
            |b, edges| b.iter(|| std::hint::black_box(kruskal(k, edges))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mst_kernels);
criterion_main!(benches);
