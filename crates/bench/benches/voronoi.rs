//! Criterion micro-benchmarks of the distributed Voronoi kernel: queue
//! discipline (FIFO vs priority), rank counts, and vertex delegation —
//! the ablations DESIGN.md calls out for the paper's §IV design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner::{solve_partitioned, QueueKind, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::partition::partition_graph;

fn pick_seeds(g: &stgraph::CsrGraph, k: usize) -> Vec<u32> {
    seeds::select(g, k, seeds::Strategy::BfsLevel, 1)
}

fn bench_queue_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_queue");
    for dataset in [Dataset::Lvj, Dataset::Ptn] {
        let g = dataset.generate_tiny(3);
        let seeds = pick_seeds(&g, 32);
        let pg = partition_graph(&g, 2, None);
        for queue in [QueueKind::Fifo, QueueKind::Priority] {
            let cfg = SolverConfig {
                num_ranks: 2,
                queue,
                ..SolverConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(queue.name(), dataset.name()),
                &cfg,
                |b, cfg| {
                    b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
                },
            );
        }
    }
    group.finish();
}

fn bench_rank_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_ranks");
    let g = Dataset::Lvj.generate_tiny(5);
    let seeds = pick_seeds(&g, 32);
    for p in [1usize, 2, 4] {
        let pg = partition_graph(&g, p, None);
        let cfg = SolverConfig {
            num_ranks: p,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(p), &cfg, |b, cfg| {
            b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
        });
    }
    group.finish();
}

fn bench_delegates(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_delegates");
    let g = Dataset::Wdc.generate_tiny(7); // most skewed degree distribution
    let seeds = pick_seeds(&g, 32);
    for (name, thresh) in [("off", None), ("deg>=64", Some(64)), ("deg>=16", Some(16))] {
        let pg = partition_graph(&g, 4, thresh);
        let cfg = SolverConfig {
            num_ranks: 4,
            delegate_threshold: thresh,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
        });
    }
    group.finish();
}

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_aggregation");
    let g = Dataset::Lvj.generate_tiny(9);
    let seeds = pick_seeds(&g, 32);
    let pg = partition_graph(&g, 4, None);
    for batch_size in [1usize, 16, 64, 512] {
        let cfg = SolverConfig {
            num_ranks: 4,
            batch_size,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(batch_size), &cfg, |b, cfg| {
            b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_queue_disciplines,
    bench_rank_counts,
    bench_delegates,
    bench_batch_sizes
);
criterion_main!(benches);
