//! Criterion benchmark: asynchronous vs bulk-synchronous Voronoi kernels —
//! the paper's §IV design argument ("asynchronous processing offers
//! notable advantage over bulk synchronous processing"), measured on the
//! same runtime, partitioning, and graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner::messages::VoronoiMsg;
use steiner::state::{ScratchArena, VertexStates};
use stgraph::datasets::Dataset;
use stgraph::partition::partition_graph;
use struntime::traversal::TraversalOptions;
use struntime::{QueueKind, World};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("voronoi_scheduling");
    for dataset in [Dataset::Lvj, Dataset::Ptn] {
        let g = dataset.generate_tiny(9);
        let seeds = seeds::select(&g, 32, seeds::Strategy::BfsLevel, 1);
        let pg = partition_graph(&g, 4, None);
        let pg = &pg;
        let seeds = &seeds;

        for (name, queue) in [
            ("async_priority", QueueKind::Priority),
            ("async_bucketed", QueueKind::Bucketed { delta: 3 }),
        ] {
            group.bench_function(BenchmarkId::new(name, dataset.name()), |b| {
                b.iter(|| {
                    World::run(4, |comm| {
                        let chan = comm.open_channels::<Vec<VoronoiMsg>>("voronoi");
                        let rg = &pg.ranks[comm.rank()];
                        let mut st = VertexStates::new(rg);
                        let mut scratch = ScratchArena::new();
                        steiner::voronoi::run(
                            comm,
                            &chan,
                            rg,
                            &pg.partition,
                            &mut st,
                            seeds,
                            TraversalOptions::new(queue),
                            &mut scratch,
                        )
                    })
                })
            });
        }
        group.bench_function(BenchmarkId::new("bsp", dataset.name()), |b| {
            b.iter(|| {
                World::run(4, |comm| {
                    let chan = comm.open_channels::<Vec<VoronoiMsg>>("voronoi_bsp");
                    let rg = &pg.ranks[comm.rank()];
                    let mut st = VertexStates::new(rg);
                    let mut scratch = ScratchArena::new();
                    steiner::voronoi_bsp::run_bsp(
                        comm,
                        &chan,
                        rg,
                        &pg.partition,
                        &mut st,
                        seeds,
                        &mut scratch,
                    )
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
