//! Criterion micro-benchmarks of the interactive session: incremental seed
//! edits vs. rebuilding the session from scratch — the interactivity claim
//! of the paper's §I, quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner::interactive::InteractiveSession;
use stgraph::datasets::Dataset;

fn bench_add_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactive_add_seed");
    let g = Dataset::Lvj.generate_tiny(7);
    let base = seeds::select(&g, 20, seeds::Strategy::BfsLevel, 1);
    let extra = seeds::select(&g, 40, seeds::Strategy::UniformRandom, 2)
        .into_iter()
        .find(|v| !base.contains(v))
        .expect("spare vertex");

    group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
        b.iter_batched(
            || InteractiveSession::new(&g, &base).unwrap(),
            |mut s| {
                s.add_seed(extra).unwrap();
                s
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::from_parameter("from_scratch"), |b| {
        let mut all = base.clone();
        all.push(extra);
        b.iter(|| InteractiveSession::new(&g, &all).unwrap())
    });
    group.finish();
}

fn bench_remove_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("interactive_remove_seed");
    let g = Dataset::Lvj.generate_tiny(7);
    let base = seeds::select(&g, 20, seeds::Strategy::BfsLevel, 1);

    group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
        b.iter_batched(
            || InteractiveSession::new(&g, &base).unwrap(),
            |mut s| {
                s.remove_seed(base[0]).unwrap();
                s
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::from_parameter("from_scratch"), |b| {
        let without: Vec<u32> = base[1..].to_vec();
        b.iter(|| InteractiveSession::new(&g, &without).unwrap())
    });
    group.finish();
}

fn bench_tree_rebuild(c: &mut Criterion) {
    let g = Dataset::Lvj.generate_tiny(7);
    let base = seeds::select(&g, 20, seeds::Strategy::BfsLevel, 1);
    let session = InteractiveSession::new(&g, &base).unwrap();
    c.bench_function("interactive_tree_extraction", |b| {
        b.iter(|| session.tree().unwrap())
    });
}

criterion_group!(
    benches,
    bench_add_seed,
    bench_remove_seed,
    bench_tree_rebuild
);
criterion_main!(benches);
