//! Criterion micro-benchmarks of the distance-graph phases: the sequential
//! cross-cell reduction kernels and the dense vs chunked vs sparse global
//! reduction (the §V-F memory/runtime trade-off).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steiner::{solve_partitioned, ReduceModeConfig, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::partition::partition_graph;

fn bench_reduce_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_graph_reduce");
    let g = Dataset::Lvj.generate_tiny(11);
    let seeds = seeds::select(&g, 64, seeds::Strategy::BfsLevel, 1);
    let pg = partition_graph(&g, 2, None);
    for (name, mode) in [
        ("dense", ReduceModeConfig::Dense { chunk: None }),
        ("chunked_256", ReduceModeConfig::Dense { chunk: Some(256) }),
        ("sparse", ReduceModeConfig::Sparse),
    ] {
        let cfg = SolverConfig {
            num_ranks: 2,
            reduce_mode: mode,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| solve_partitioned(&pg, &seeds, cfg).expect("connected"));
        });
    }
    group.finish();
}

fn bench_cross_edge_reduction(c: &mut Criterion) {
    use baselines::common::{cross_edges, min_cross_edges};
    use baselines::shortest_path::voronoi_cells;
    let g = Dataset::Ptn.generate_tiny(13);
    let seeds = seeds::select(&g, 48, seeds::Strategy::BfsLevel, 2);
    let vr = voronoi_cells(&g, &seeds);
    c.bench_function("cross_edges_enumerate", |b| {
        b.iter(|| std::hint::black_box(cross_edges(&g, &vr)));
    });
    let all = cross_edges(&g, &vr);
    c.bench_function("cross_edges_min_reduce", |b| {
        b.iter(|| std::hint::black_box(min_cross_edges(&all)));
    });
}

criterion_group!(benches, bench_reduce_modes, bench_cross_edge_reduction);
criterion_main!(benches);
