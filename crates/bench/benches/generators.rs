//! Criterion micro-benchmarks of the graph substrate: generators, CSR
//! assembly, and partitioning — the costs every experiment pays up front.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph::generators::{barabasi_albert, rmat, weighted_from_edges, RmatParams};
use stgraph::partition::partition_graph;
use stgraph::weights::WeightRange;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("rmat_scale12_8x", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            std::hint::black_box(rmat(12, 8 << 12, RmatParams::graph500(), &mut rng))
        })
    });
    group.bench_function("ba_n4096_m4", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            std::hint::black_box(barabasi_albert(4096, 4, &mut rng))
        })
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let edges = rmat(12, 8 << 12, RmatParams::social(), &mut rng);
    c.bench_function("csr_build_scale12", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            std::hint::black_box(weighted_from_edges(
                1 << 12,
                edges.iter().copied(),
                WeightRange::new(1, 5000),
                &mut rng,
            ))
        })
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let g = stgraph::datasets::Dataset::Lvj.generate_tiny(7);
    let mut group = c.benchmark_group("partition");
    for p in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("plain", p), &p, |b, &p| {
            b.iter(|| std::hint::black_box(partition_graph(&g, p, None)))
        });
        group.bench_with_input(BenchmarkId::new("delegates", p), &p, |b, &p| {
            b.iter(|| std::hint::black_box(partition_graph(&g, p, Some(32))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_csr_build,
    bench_partitioning
);
criterion_main!(benches);
