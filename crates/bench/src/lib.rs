#![warn(missing_docs)]

//! Shared infrastructure for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). This module provides the common
//! pieces: dataset/seed preparation, repeated-run timing, and plain-text
//! table rendering so every harness prints rows in the paper's shape.

pub mod report;

pub use report::BenchReport;

use std::time::{Duration, Instant};
use stgraph::csr::{CsrGraph, Vertex};

/// Fixed RNG seed used by every harness so experiment output is
/// reproducible run to run.
pub const EXPERIMENT_SEED: u64 = 20220530; // IPDPS 2022 conference date.

/// Whether `--quick` was passed: harnesses shrink datasets and repetition
/// counts so the whole suite runs in CI-friendly time.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Generates a dataset analogue at full or quick scale.
pub fn load_dataset(d: stgraph::datasets::Dataset) -> CsrGraph {
    if quick_mode() {
        d.generate_tiny(EXPERIMENT_SEED)
    } else {
        d.generate(EXPERIMENT_SEED)
    }
}

/// Selects `k` seeds the way the paper's evaluation does (BFS-level
/// strategy in the largest component), capped at half the largest
/// component so Voronoi cells stay non-trivial.
pub fn pick_seeds(g: &CsrGraph, k: usize) -> Vec<Vertex> {
    let cc = stgraph::traversal::connected_components(g);
    let cap = cc.sizes[cc.largest() as usize] / 2;
    let k = k.min(cap.max(2));
    seeds::select(g, k, seeds::Strategy::BfsLevel, EXPERIMENT_SEED)
}

/// Runs `f` `reps` times and returns the median wall-clock duration.
pub fn median_time<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps >= 1);
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Formats a duration the way the paper's tables do (ms / s / m).
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}m", s / 60.0)
    }
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A minimal fixed-width text table, printed in the paper's row/column
/// shape.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints the standard experiment header.
pub fn banner(title: &str, detail: &str) {
    println!("== {title} ==");
    println!("{detail}");
    if quick_mode() {
        println!("(quick mode: reduced dataset scale and repetitions)");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let r = t.render();
        assert!(r.contains("long_header"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_dur(Duration::from_millis(1500)), "1.50s");
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500us");
        assert_eq!(fmt_dur(Duration::from_micros(5500)), "5.5ms");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn median_time_runs_all_reps() {
        let mut count = 0;
        let _ = median_time(5, || count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn pick_seeds_respects_component_cap() {
        let g = stgraph::datasets::Dataset::Cts.generate_tiny(1);
        let s = pick_seeds(&g, 10_000);
        assert!(s.len() >= 2);
        assert!(s.len() <= g.num_vertices() / 2 + 1);
    }
}
