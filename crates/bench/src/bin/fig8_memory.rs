//! Fig 8: cluster-wide peak memory — graph vs algorithm state — and the
//! chunked-collective memory/runtime trade-off (§V-F).
//!
//! The paper reports peak memory split into the in-memory graph and the
//! algorithm states (vertex states, communication buffers, messages); the
//! jump at |S| = 10K comes from the `binom(|S|, 2)`-element distance-graph
//! buffer, and chunked collectives reduce it at some runtime cost. Shapes
//! to check: state memory grows superlinearly with |S| under the dense
//! reduction; chunking caps the collective buffer; the sparse reduction is
//! smaller still.
//!
//! Run: `cargo run -p bench --release --bin fig8_memory [--quick]`

use bench::{banner, fmt_bytes, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{solve_partitioned, ReduceModeConfig, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Fig 8 — peak memory: graph vs algorithm states; chunked collectives",
        "datasets: LVJ, CLW, WDC analogues; small vs large |S|; dense/chunked/sparse",
    );
    let (ranks, small_s, large_s) = if quick_mode() {
        (2, 20, 100)
    } else {
        (4, 250, 1000)
    };

    let mut table = Table::new([
        "graph",
        "|S|",
        "reduction",
        "graph bytes",
        "state bytes",
        "total",
        "time",
    ]);
    let mut bench_report = BenchReport::new("fig8_memory");
    for dataset in [Dataset::Lvj, Dataset::Clw, Dataset::Wdc] {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks, None);
        for &k in &[small_s, large_s] {
            let seeds = pick_seeds(&g, k);
            for (label, mode) in [
                ("dense", ReduceModeConfig::Dense { chunk: None }),
                (
                    "chunked(64K)",
                    ReduceModeConfig::Dense {
                        chunk: Some(1 << 16),
                    },
                ),
                ("sparse", ReduceModeConfig::Sparse),
            ] {
                let cfg = SolverConfig {
                    num_ranks: ranks,
                    reduce_mode: mode,
                    ..SolverConfig::default()
                };
                let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
                bench_report.add_solve(
                    format!("{}_s{}_{}", dataset.name(), seeds.len(), label),
                    Json::obj()
                        .with("graph", dataset.name())
                        .with("num_seeds", seeds.len())
                        .with("reduction", label)
                        .with("ranks", ranks),
                    &report,
                );
                table.row([
                    dataset.name().to_string(),
                    seeds.len().to_string(),
                    label.to_string(),
                    fmt_bytes(report.graph_bytes),
                    fmt_bytes(report.state_peak_bytes),
                    fmt_bytes(report.graph_bytes + report.state_peak_bytes),
                    fmt_dur(report.time_to_solution()),
                ]);
            }
        }
    }
    table.print();
    println!();
    println!("Paper shape: small graphs are dominated by state memory (LVJ 10K");
    println!("seeds used 35.9x the memory of 1K); the dense distance-graph buffer");
    println!("drives the blowup; chunked collectives trade runtime for memory.");
    bench_report.finish();
}
