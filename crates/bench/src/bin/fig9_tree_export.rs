//! Fig 9: Steiner trees in the MiCo graph, rendered for three seed set
//! sizes.
//!
//! The paper draws the output trees (seeds red, Steiner vertices blue).
//! This harness solves on the MCO analogue for three seed counts, writes
//! Graphviz DOT files to `target/fig9/`, and prints tree statistics.
//! Render with e.g. `dot -Tsvg target/fig9/steiner_s16.dot -o tree.svg`.
//!
//! Run: `cargo run -p bench --release --bin fig9_tree_export [--quick]`

use bench::{banner, fmt_count, load_dataset, pick_seeds, BenchReport, Table};
use steiner::{solve, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;

fn main() {
    banner(
        "Fig 9 — Steiner trees in the MiCo analogue (DOT export)",
        "seed counts: 4, 16, 64; output: target/fig9/steiner_s<k>.dot",
    );
    let g = load_dataset(Dataset::Mco);
    let out_dir = std::path::Path::new("target/fig9");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let mut table = Table::new([
        "|S|",
        "|E_S|",
        "D(G_S)",
        "steiner vertices",
        "leaves",
        "max deg",
        "diameter",
        "file",
    ]);
    let mut bench_report = BenchReport::new("fig9_tree_export");
    for k in [4usize, 16, 64] {
        let seeds = pick_seeds(&g, k);
        let cfg = SolverConfig {
            num_ranks: 2,
            ..SolverConfig::default()
        };
        let report = solve(&g, &seeds, &cfg).expect("seeds connected");
        bench_report.add_solve(
            format!("mco_s{}", seeds.len()),
            Json::obj()
                .with("graph", Dataset::Mco.name())
                .with("num_seeds", seeds.len())
                .with("ranks", 2u64),
            &report,
        );
        let path = out_dir.join(format!("steiner_s{}.dot", seeds.len()));
        std::fs::write(&path, report.tree.to_dot()).expect("write DOT");
        let m = report.tree.metrics();
        table.row([
            seeds.len().to_string(),
            m.num_edges.to_string(),
            fmt_count(m.total_distance),
            m.steiner_vertices.to_string(),
            m.num_leaves.to_string(),
            m.max_degree.to_string(),
            fmt_count(m.weighted_diameter),
            path.display().to_string(),
        ]);
    }
    table.print();
    println!();
    println!("Paper shape: trees stay sparse relative to the graph; most internal");
    println!("vertices are Steiner (blue) vertices stitched between the red seeds.");
    bench_report.finish();
}
