//! Table VI: runtime comparison — our distributed solver vs the exact
//! solver and the sequential 2-approximations.
//!
//! The paper compares against SCIP-Jack (exact), WWW, and Mehlhorn on its
//! four smallest graphs with |S| in {10, 100, 1000}, running the
//! distributed solver with 16 processes on one machine. Our exact stand-in
//! is Dreyfus–Wagner, which is only feasible at |S| = 10 (its cost is
//! exponential in |S|; SCIP-Jack's branch-and-cut handles more seeds but
//! minutes-to-hours slower than the approximations — the same shape).
//! Shapes to check: exact is orders of magnitude slower; WWW is roughly
//! |S|-independent; Mehlhorn grows mildly with |S|; the distributed solver
//! wins on the larger graphs and loses to the sequential algorithms on the
//! tiny ones (runtime overhead dominates).
//!
//! Run: `cargo run -p bench --release --bin table6_runtime_comparison [--quick]`

use baselines::{dreyfus_wagner, mehlhorn, takahashi, www};
use bench::{
    banner, fmt_dur, load_dataset, median_time, pick_seeds, quick_mode, BenchReport, Table,
};
use steiner::{solve_partitioned, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Table VI — runtime: exact (DW) vs WWW vs Mehlhorn vs distributed",
        "datasets: LVJ, PTN, MCO, CTS analogues; |S| in {10, 100, 1000}",
    );
    let (ranks, seed_counts): (usize, &[usize]) = if quick_mode() {
        (2, &[8, 50])
    } else {
        (16, &[10, 100, 1000])
    };
    let reps = if quick_mode() { 1 } else { 3 };

    let mut table = Table::new([
        "graph",
        "|S|",
        "exact(DW)",
        "TM",
        "WWW",
        "Mehlhorn",
        "distributed",
    ]);
    let mut bench_report = BenchReport::new("table6_runtime_comparison");
    for dataset in Dataset::SMALL {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks, None);
        let cfg = SolverConfig {
            num_ranks: ranks,
            ..SolverConfig::default()
        };
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            // Exact DP is exponential in |S|; only run it where feasible.
            let mut exact_us: Option<u64> = None;
            let exact = if seeds.len() <= 10 {
                let d = median_time(reps, || {
                    std::hint::black_box(dreyfus_wagner(&g, &seeds).expect("connected"));
                });
                exact_us = Some(d.as_micros() as u64);
                fmt_dur(d)
            } else {
                "(infeasible)".to_string()
            };
            let t_tm = median_time(reps, || {
                std::hint::black_box(takahashi(&g, &seeds).expect("connected"));
            });
            let t_www = median_time(reps, || {
                std::hint::black_box(www(&g, &seeds).expect("connected"));
            });
            let t_meh = median_time(reps, || {
                std::hint::black_box(mehlhorn(&g, &seeds).expect("connected"));
            });
            let t_dist = median_time(reps, || {
                std::hint::black_box(solve_partitioned(&pg, &seeds, &cfg).expect("connected"));
            });
            bench_report.add_metrics(
                format!("{}_s{}", dataset.name(), seeds.len()),
                Json::obj()
                    .with("graph", dataset.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks),
                Json::obj()
                    .with("exact_us", exact_us)
                    .with("tm_us", t_tm.as_micros() as u64)
                    .with("www_us", t_www.as_micros() as u64)
                    .with("mehlhorn_us", t_meh.as_micros() as u64)
                    .with("distributed_us", t_dist.as_micros() as u64),
            );
            table.row([
                dataset.name().to_string(),
                seeds.len().to_string(),
                exact,
                fmt_dur(t_tm),
                fmt_dur(t_www),
                fmt_dur(t_meh),
                fmt_dur(t_dist),
            ]);
        }
    }
    table.print();
    println!();
    println!("Paper shape (16 procs, one machine): exact SCIP-Jack minutes-to-hours;");
    println!("WWW ~constant in |S| (LVJ 28s); Mehlhorn grows (25s -> 1.9m);");
    println!("distributed wins on LVJ/PTN (5.5s/4.6s), ties or loses on MCO/CTS.");
    println!("Note: on this single-core host the simulated ranks add overhead");
    println!("rather than parallel speedup, so 'distributed' is handicapped;");
    println!("see Fig 3's work-based scaling for the parallel-efficiency shape.");
    bench_report.finish();
}
