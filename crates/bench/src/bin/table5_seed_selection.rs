//! Table V: seed-selection strategies — runtime, tree distance, tree size.
//!
//! The paper compares BFS-level (its default), uniform-random, eccentric,
//! and proximate selection on LVJ. Shapes to check: runtimes are similar
//! across strategies; proximate yields dramatically smaller trees (both
//! D(G_S) and |E_S|), eccentric the largest distances.
//!
//! Run: `cargo run -p bench --release --bin table5_seed_selection [--quick]`

use bench::{
    banner, fmt_count, fmt_dur, load_dataset, quick_mode, BenchReport, Table, EXPERIMENT_SEED,
};
use seeds::Strategy;
use steiner::{solve_partitioned, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Table V — seed selection strategies (LVJ analogue)",
        "strategies: bfs-level, uniform-random, eccentric, proximate",
    );
    let (ranks, seed_counts): (usize, &[usize]) = if quick_mode() {
        (2, &[20, 50])
    } else {
        (4, &[100, 500, 1000])
    };

    let g = load_dataset(Dataset::Lvj);
    let pg = partition_graph(&g, ranks, None);
    let cfg = SolverConfig {
        num_ranks: ranks,
        ..SolverConfig::default()
    };

    let cc = stgraph::traversal::connected_components(&g);
    let cap = cc.sizes[cc.largest() as usize] / 2;

    let mut bench_report = BenchReport::new("table5_seed_selection");
    let mut table = Table::new(["strategy", "|S|", "time", "D(G_S)", "|E_S|", "mean hops"]);
    for strategy in Strategy::ALL {
        for &k in seed_counts {
            let k = k.min(cap.max(2));
            let s = seeds::select(&g, k, strategy, EXPERIMENT_SEED);
            let spread = seeds::mean_pairwise_hops(&g, &s);
            let report = solve_partitioned(&pg, &s, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("{}_s{}", strategy.name(), s.len()),
                Json::obj()
                    .with("strategy", strategy.name())
                    .with("num_seeds", s.len())
                    .with("mean_pairwise_hops", spread)
                    .with("ranks", ranks),
                &report,
            );
            table.row([
                strategy.name().to_string(),
                s.len().to_string(),
                fmt_dur(report.time_to_solution()),
                fmt_count(report.tree.total_distance()),
                fmt_count(report.tree.num_edges() as u64),
                format!("{spread:.2}"),
            ]);
        }
    }
    table.print();
    println!();
    println!("Paper shape: no notable runtime difference between strategies;");
    println!("proximate produces significantly smaller trees (LVJ |S|=1K:");
    println!("101.0K distance / 1,699 edges vs 2,840.9K / 7,193 for BFS-level);");
    println!("eccentric produces the largest total distances.");
    bench_report.finish();
}
