//! Fig 7: influence of the edge-weight distribution on runtime, FIFO vs
//! priority queues.
//!
//! The paper reweights the LVJ graph with ranges [1,100] up to [1,100K]
//! (fixed 1K seeds, one machine) and finds: (a) weight range affects
//! Voronoi convergence, (b) FIFO runtime is far more variable across
//! ranges (stddev 13.5s vs 0.91s), i.e. the priority queue makes the
//! solver *insensitive* to the weight distribution. Shapes to check:
//! priority beats FIFO everywhere and its column varies much less.
//!
//! Run: `cargo run -p bench --release --bin fig7_weight_dist [--quick]`

use bench::{
    banner, fmt_count, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table,
    EXPERIMENT_SEED,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use steiner::{solve_partitioned, QueueKind, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;
use stgraph::weights::{reweight, reweight_with, WeightDistribution, WeightRange};

fn main() {
    banner(
        "Fig 7 — edge-weight distribution vs runtime (FIFO vs priority)",
        "LVJ analogue topology, reweighted per range; fixed |S|",
    );
    let (ranks, k) = if quick_mode() { (2, 50) } else { (4, 1000) };
    let ranges: &[(u64, u64)] = &[(1, 100), (1, 1000), (1, 10_000), (1, 100_000)];

    let base = load_dataset(Dataset::Lvj);
    let seeds = pick_seeds(&base, k);

    let mut table = Table::new([
        "weight range",
        "fifo time",
        "fifo msgs",
        "priority time",
        "priority msgs",
        "speedup",
    ]);
    let mut bench_report = BenchReport::new("fig7_weight_dist");
    let mut fifo_times = Vec::new();
    let mut prio_times = Vec::new();
    for &(lo, hi) in ranges {
        let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED ^ hi);
        let g = reweight(&base, WeightRange::new(lo, hi), &mut rng);
        let pg = partition_graph(&g, ranks, None);
        let mut row: Vec<String> = vec![format!("[{lo}, {hi}]")];
        let mut times = [0.0f64; 2];
        for (i, queue) in [QueueKind::Fifo, QueueKind::Priority]
            .into_iter()
            .enumerate()
        {
            let cfg = SolverConfig {
                num_ranks: ranks,
                queue,
                ..SolverConfig::default()
            };
            let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("range_{lo}_{hi}_{}", queue.name()),
                Json::obj()
                    .with("weight_lo", lo)
                    .with("weight_hi", hi)
                    .with("queue", queue.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks),
                &report,
            );
            times[i] = report.time_to_solution().as_secs_f64();
            row.push(fmt_dur(report.time_to_solution()));
            row.push(fmt_count(
                report
                    .message_counts
                    .get("voronoi")
                    .map(|s| s.total_msgs())
                    .unwrap_or(0),
            ));
        }
        row.push(format!("{:.2}x", times[0] / times[1]));
        table.row(row);
        fifo_times.push(times[0]);
        prio_times.push(times[1]);
    }
    table.print();
    println!();
    let stddev = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    };
    println!(
        "runtime stddev across ranges: fifo {:.1}ms, priority {:.1}ms ({:.1}x more variable)",
        stddev(&fifo_times) * 1e3,
        stddev(&prio_times) * 1e3,
        stddev(&fifo_times) / stddev(&prio_times).max(1e-9),
    );
    println!();
    println!("Paper shape: [1,100] converges fastest; FIFO stddev 13.5s is 14.7x");
    println!("priority's 0.91s — the priority queue desensitizes the solver to the");
    println!("weight distribution.");

    // Extension beyond the paper: distribution *shape* at a fixed range.
    println!();
    println!("--- extension: distribution shapes at range [1, 5000] ---");
    let r = WeightRange::new(1, 5000);
    let shapes = [
        WeightDistribution::Uniform(r),
        WeightDistribution::LogUniform(r),
        WeightDistribution::Bimodal {
            low: WeightRange::new(1, 50),
            high: WeightRange::new(2500, 5000),
            weak_fraction: 0.2,
        },
    ];
    let mut shape_table = Table::new([
        "distribution",
        "fifo time",
        "fifo msgs",
        "priority time",
        "priority msgs",
    ]);
    for dist in shapes {
        let mut rng = ChaCha8Rng::seed_from_u64(EXPERIMENT_SEED ^ 0xD15);
        let g = reweight_with(&base, dist, &mut rng);
        let pg = partition_graph(&g, ranks, None);
        let mut row: Vec<String> = vec![dist.name().to_string()];
        for queue in [QueueKind::Fifo, QueueKind::Priority] {
            let cfg = SolverConfig {
                num_ranks: ranks,
                queue,
                ..SolverConfig::default()
            };
            let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("dist_{}_{}", dist.name(), queue.name()),
                Json::obj()
                    .with("distribution", dist.name())
                    .with("queue", queue.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks),
                &report,
            );
            row.push(fmt_dur(report.time_to_solution()));
            row.push(fmt_count(
                report
                    .message_counts
                    .get("voronoi")
                    .map(|s| s.total_msgs())
                    .unwrap_or(0),
            ));
        }
        shape_table.row(row);
    }
    shape_table.print();
    println!();
    println!("(log-uniform behaves like a narrow range — most edges are cheap —");
    println!("while bimodal stresses FIFO hardest: cheap detours around weak ties");
    println!("keep correcting earlier relaxations)");
    bench_report.finish();
}
