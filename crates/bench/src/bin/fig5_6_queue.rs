//! Fig 5 + Fig 6: FIFO vs priority message queues — runtime and message
//! counts, broken down by phase.
//!
//! The paper's headline runtime optimization: prioritizing low-distance
//! messages in the Voronoi phase approximates Dijkstra's settle order
//! inside the asynchronous Bellman-Ford kernel, cutting both wasted
//! relaxations (Fig 6: 4.9x fewer messages on FRS, 22.1x on LVJ) and
//! runtime (Fig 5: 3.5x on FRS, 13x on LVJ). Shapes to check: priority
//! wins on both metrics; the message-count gap concentrates in the Voronoi
//! phase; LVJ (small weight cap, long chains) gains the most.
//!
//! A third row per graph runs the `bucketed` delta-stepping discipline
//! (delta = mean edge weight): it should track priority's message counts
//! while replacing heap pops with O(1) bucket pops, and — like priority —
//! it drops dominated relaxations unvisited at pop time (the stale-drops
//! column; FIFO shows zero because full delivery is its baseline role).
//!
//! Run: `cargo run -p bench --release --bin fig5_6_queue [--quick]`

use bench::{banner, fmt_count, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{solve_partitioned, Phase, QueueKind, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Fig 5/6 — FIFO vs priority queue: runtime and message counts",
        "datasets: LVJ, FRS, UKW analogues; fixed |S|; fixed ranks",
    );
    let (ranks, k) = if quick_mode() { (2, 50) } else { (8, 1000) };

    let mut fig5 = Table::new([
        "graph",
        "queue",
        "voronoi",
        "local_min",
        "other",
        "total",
        "speedup",
    ]);
    let mut fig6 = Table::new([
        "graph",
        "queue",
        "voronoi msgs",
        "local_min msgs",
        "tree_edge msgs",
        "stale drops",
        "improvement",
    ]);

    let mut bench_report = BenchReport::new("fig5_6_queue");
    for dataset in [Dataset::Lvj, Dataset::Frs, Dataset::Ukw] {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks, None);
        let seeds = pick_seeds(&g, k);
        let delta = steiner::auto_delta(&g);
        let mut fifo_total = 0.0;
        let mut fifo_voronoi_msgs = 0u64;
        for queue in [
            QueueKind::Fifo,
            QueueKind::Priority,
            QueueKind::Bucketed { delta },
        ] {
            let cfg = SolverConfig {
                num_ranks: ranks,
                queue,
                ..SolverConfig::default()
            };
            let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("{}_{}", dataset.name(), queue.name()),
                Json::obj()
                    .with("graph", dataset.name())
                    .with("queue", queue.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks),
                &report,
            );
            let t = report.phase_times;
            let other = report.time_to_solution() - t[Phase::Voronoi] - t[Phase::LocalMinEdge];
            let total = report.time_to_solution().as_secs_f64();
            let speedup = if queue == QueueKind::Fifo {
                fifo_total = total;
                "1.00x".to_string()
            } else {
                format!("{:.2}x", fifo_total / total)
            };
            fig5.row([
                dataset.name().to_string(),
                queue.name().to_string(),
                fmt_dur(t[Phase::Voronoi]),
                fmt_dur(t[Phase::LocalMinEdge]),
                fmt_dur(other),
                fmt_dur(report.time_to_solution()),
                speedup,
            ]);

            let msgs = |phase: &str| -> u64 {
                report
                    .message_counts
                    .get(phase)
                    .map(|s| s.total_msgs())
                    .unwrap_or(0)
            };
            let voronoi_msgs = msgs("voronoi");
            let improvement = if queue == QueueKind::Fifo {
                fifo_voronoi_msgs = voronoi_msgs;
                "1.00x".to_string()
            } else {
                format!("{:.2}x", fifo_voronoi_msgs as f64 / voronoi_msgs as f64)
            };
            fig6.row([
                dataset.name().to_string(),
                queue.name().to_string(),
                fmt_count(voronoi_msgs),
                fmt_count(msgs("local_min_edge")),
                fmt_count(msgs("tree_edge")),
                fmt_count(report.stale_drops.iter().sum()),
                improvement,
            ]);
        }
    }
    println!("--- Fig 5: runtime by phase ---");
    fig5.print();
    println!();
    println!("--- Fig 6: generated message traffic by phase ---");
    fig6.print();
    println!();
    println!("Paper shape: priority queue cuts Voronoi messages by 4.9x (FRS) to");
    println!("22.1x (LVJ) and runtime by 3.5x to 13x; local_min and tree_edge");
    println!("traffic are queue-independent and small. bucketed (delta-stepping,");
    println!("delta = mean edge weight) tracks priority's message counts with");
    println!("cheap bucket pops; both ordered disciplines drop dominated");
    println!("relaxations unvisited (stale drops column).");
    bench_report.finish();
}
