//! Fig 3: strong scaling with per-phase runtime breakdown.
//!
//! The paper runs its four largest graphs on 32–512 nodes with 100 and 1K
//! seeds; runtime is dominated by the Voronoi phase and speedup over the
//! smallest scale is reported per bar. Here the "cluster" is simulated
//! ranks multiplexed over this machine's physical cores, so *wall-clock*
//! cannot exhibit strong scaling beyond the core count; the scaling metric
//! is the work-based simulated speedup (total visitors processed divided
//! by the most-loaded rank's share — ideal under perfect load balance,
//! degraded by partition skew exactly as a real cluster would be). The
//! shapes to check: (a) Voronoi dominates every breakdown, and (b)
//! simulated speedup grows as ranks double, more efficiently on the larger
//! graphs.
//!
//! Run: `cargo run -p bench --release --bin fig3_strong_scaling [--quick]`

use bench::{banner, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{solve_partitioned, Phase, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Fig 3 — strong scaling, per-phase runtime breakdown",
        "datasets: FRS, UKW, CLW, WDC analogues; |S| in {100, 1000}; ranks doubling",
    );
    let (rank_ladder, seed_counts): (&[usize], &[usize]) = if quick_mode() {
        (&[1, 2, 4], &[50])
    } else {
        (&[1, 2, 4, 8], &[100, 1000])
    };

    let mut bench_report = BenchReport::new("fig3_strong_scaling");
    for dataset in Dataset::LARGE {
        let g = load_dataset(dataset);
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            println!(
                "--- {} (|V|={}, 2|E|={}), |S| = {} ---",
                dataset.name(),
                g.num_vertices(),
                g.num_arcs(),
                seeds.len()
            );
            let mut table = Table::new([
                "ranks",
                "voronoi",
                "local_min",
                "global_min",
                "mst",
                "pruning",
                "tree_edge",
                "wall",
                "sim-speedup",
                "efficiency",
            ]);
            for &p in rank_ladder {
                // Delegate hubs like the paper's HavoqGT configuration:
                // vertex-cut high-degree vertices for load balance.
                let pg = partition_graph(&g, p, Some(64));
                let cfg = SolverConfig {
                    num_ranks: p,
                    delegate_threshold: Some(64),
                    ..SolverConfig::default()
                };
                let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
                bench_report.add_solve(
                    format!("{}_s{}_p{}", dataset.name(), seeds.len(), p),
                    Json::obj()
                        .with("graph", dataset.name())
                        .with("num_seeds", seeds.len())
                        .with("ranks", p),
                    &report,
                );
                let t = report.phase_times;
                let speedup = report.simulated_speedup();
                table.row([
                    p.to_string(),
                    fmt_dur(t[Phase::Voronoi]),
                    fmt_dur(t[Phase::LocalMinEdge]),
                    fmt_dur(t[Phase::GlobalMinEdge]),
                    fmt_dur(t[Phase::Mst]),
                    fmt_dur(t[Phase::EdgePruning]),
                    fmt_dur(t[Phase::TreeEdge]),
                    fmt_dur(report.time_to_solution()),
                    format!("{speedup:.2}x"),
                    format!("{:.0}%", 100.0 * speedup / p as f64),
                ]);
            }
            table.print();
            println!();
        }
    }
    println!("Paper shape: Voronoi dominates every bar; larger graphs scale better");
    println!("(up to 90% efficiency on CLW/WDC); speedup grows as ranks double.");
    println!("Note: sim-speedup is work-based (see header); wall-clock on this host");
    println!("reflects single-machine thread multiplexing, not cluster scaling.");
    bench_report.finish();
}
