//! Fig 3: strong scaling with per-phase runtime breakdown.
//!
//! The paper runs its four largest graphs on 32–512 nodes with 100 and 1K
//! seeds; runtime is dominated by the Voronoi phase and speedup over the
//! smallest scale is reported per bar. Here the "cluster" is simulated
//! ranks multiplexed over this machine's physical cores, so *wall-clock*
//! cannot exhibit strong scaling beyond the core count; the scaling metric
//! is the work-based simulated speedup (total visitors processed divided
//! by the most-loaded rank's share — ideal under perfect load balance,
//! degraded by partition skew exactly as a real cluster would be). The
//! shapes to check: (a) Voronoi dominates every breakdown, and (b)
//! simulated speedup grows as ranks double, more efficiently on the larger
//! graphs.
//!
//! Each scale point now runs under both ordered queue disciplines —
//! `priority` (binary heap) and `bucketed:auto` (delta-stepping buckets,
//! delta = mean edge weight) — with the stale-relaxation pop-time filter
//! active for both. The `visits` column counts visitors actually
//! processed, `stale` counts dominated relaxations dropped unvisited, and
//! `churn-cut` is the reduction in voronoi-phase visit count relative to
//! the unfiltered priority baseline (visits + stale of the priority row —
//! what the pre-filter code visited). Trees are asserted bit-identical
//! across disciplines at every scale point.
//!
//! A third run per scale point exercises `--mst dist`: the distributed
//! Borůvka pipeline that replaces the replicated binom(|S|,2)
//! `Allreduce(MIN)` + Prim with per-component slot reductions and
//! pointer-jumping merges. The `mst` column names the pipeline and
//! `b-rounds` its Borůvka round count (`-` for replicated rows); the
//! dist tree is asserted bit-identical to the replicated one.
//!
//! Run: `cargo run -p bench --release --bin fig3_strong_scaling [--quick]`

use bench::{banner, fmt_count, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{auto_delta, solve_partitioned, MstMode, Phase, QueueKind, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn queue_label(queue: QueueKind) -> String {
    match queue {
        QueueKind::Bucketed { delta } => format!("bucketed:{delta}"),
        other => other.name().to_string(),
    }
}

fn main() {
    banner(
        "Fig 3 — strong scaling, per-phase runtime breakdown",
        "datasets: FRS, UKW, CLW, WDC analogues; |S| in {100, 1000}; ranks doubling",
    );
    let (rank_ladder, seed_counts): (&[usize], &[usize]) = if quick_mode() {
        (&[1, 2, 4], &[50])
    } else {
        (&[1, 2, 4, 8], &[100, 1000])
    };

    let mut bench_report = BenchReport::new("fig3_strong_scaling");
    for dataset in Dataset::LARGE {
        let g = load_dataset(dataset);
        let delta = auto_delta(&g);
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            println!(
                "--- {} (|V|={}, 2|E|={}), |S| = {}, auto delta = {delta} ---",
                dataset.name(),
                g.num_vertices(),
                g.num_arcs(),
                seeds.len()
            );
            let mut table = Table::new([
                "ranks",
                "queue",
                "mst",
                "voronoi",
                "local_min",
                "other",
                "wall",
                "sim-speedup",
                "visits",
                "stale",
                "churn-cut",
                "b-rounds",
            ]);
            for &p in rank_ladder {
                // Delegate hubs like the paper's HavoqGT configuration:
                // vertex-cut high-degree vertices for load balance.
                let pg = partition_graph(&g, p, Some(64));
                // Unfiltered visit count of the pre-filter priority code:
                // everything it popped got visited, so visits + stale of
                // the filtered priority run reconstructs it.
                let mut prio_unfiltered = 0u64;
                let mut prio_tree = None;
                let runs = [
                    (QueueKind::Priority, MstMode::Replicated),
                    (QueueKind::Bucketed { delta }, MstMode::Replicated),
                    (QueueKind::Priority, MstMode::Dist),
                ];
                for (queue, mst_mode) in runs {
                    let cfg = SolverConfig {
                        num_ranks: p,
                        queue,
                        mst_mode,
                        delegate_threshold: Some(64),
                        ..SolverConfig::default()
                    };
                    let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
                    let mst_label = match mst_mode {
                        MstMode::Replicated => "repl",
                        MstMode::Dist => "dist",
                    };
                    let label_suffix = match mst_mode {
                        MstMode::Replicated => String::new(),
                        MstMode::Dist => "_mst-dist".to_string(),
                    };
                    bench_report.add_solve(
                        format!(
                            "{}_s{}_p{}_{}{}",
                            dataset.name(),
                            seeds.len(),
                            p,
                            queue.name(),
                            label_suffix
                        ),
                        Json::obj()
                            .with("graph", dataset.name())
                            .with("num_seeds", seeds.len())
                            .with("ranks", p)
                            .with("queue", queue_label(queue).as_str())
                            .with("mst", mst_label),
                        &report,
                    );
                    let visits: u64 = report.rank_work.iter().sum();
                    let stale: u64 = report.stale_drops.iter().sum();
                    if queue == QueueKind::Priority && mst_mode == MstMode::Replicated {
                        prio_unfiltered = visits + stale;
                        prio_tree = Some(report.tree.clone());
                    } else {
                        assert_eq!(
                            Some(&report.tree),
                            prio_tree.as_ref(),
                            "disciplines and MST pipelines must converge \
                             to bit-identical trees"
                        );
                    }
                    let churn_cut = if prio_unfiltered > 0 {
                        format!(
                            "{:.0}%",
                            100.0 * (1.0 - visits as f64 / prio_unfiltered as f64)
                        )
                    } else {
                        "n/a".to_string()
                    };
                    let b_rounds = report
                        .boruvka
                        .as_ref()
                        .map_or("-".to_string(), |s| s.rounds.to_string());
                    let t = report.phase_times;
                    let other =
                        report.time_to_solution() - t[Phase::Voronoi] - t[Phase::LocalMinEdge];
                    let speedup = report.simulated_speedup();
                    table.row([
                        p.to_string(),
                        queue_label(queue),
                        mst_label.to_string(),
                        fmt_dur(t[Phase::Voronoi]),
                        fmt_dur(t[Phase::LocalMinEdge]),
                        fmt_dur(other),
                        fmt_dur(report.time_to_solution()),
                        format!("{speedup:.2}x"),
                        fmt_count(visits),
                        fmt_count(stale),
                        churn_cut,
                        b_rounds,
                    ]);
                }
            }
            table.print();
            println!();
        }
    }
    println!("Paper shape: Voronoi dominates every bar; larger graphs scale better");
    println!("(up to 90% efficiency on CLW/WDC); speedup grows as ranks double.");
    println!("churn-cut is measured against the unfiltered priority baseline");
    println!("(visits + stale of the priority row — what pre-filter code visited).");
    println!("mst=dist rows run the distributed Borůvka pipeline (b-rounds =");
    println!("slot-reduction rounds); their trees are asserted bit-identical to repl.");
    println!("Note: sim-speedup is work-based (see header); wall-clock on this host");
    println!("reflects single-machine thread multiplexing, not cluster scaling.");
    bench_report.finish();
}
