//! Fig 4 + Table IV: seed-count sweep with per-phase runtime breakdown
//! and output-tree edge counts.
//!
//! The paper fixes the process count per dataset and sweeps |S| over
//! {10, 100, 1K, 10K}. Shapes to check: per-phase totals are dominated by
//! Voronoi except at the largest |S|, where the distance-graph collective
//! and MST become visible; Table IV's |E_S| grows sublinearly in |S|.
//! Seed counts follow the paper's ladder up to 10K (the headline "10K
//! seeds in under one minute" scale); counts are capped at half of each
//! analogue's largest component (a seed count close to |V| makes cells
//! trivial, which the paper's selection avoids), so only the largest
//! analogues reach the full 10K.
//!
//! Run: `cargo run -p bench --release --bin fig4_seed_count [--quick] [--table4]`

use bench::{banner, fmt_count, fmt_dur, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{solve_partitioned, Phase, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Fig 4 — seed count vs runtime; Table IV — output tree sizes",
        "six datasets, fixed rank count, |S| sweep (scaled to analogue sizes)",
    );
    let (ranks, seed_counts): (usize, &[usize]) = if quick_mode() {
        (2, &[10, 50, 100])
    } else {
        (8, &[10, 100, 1000, 10000])
    };

    let datasets = [
        Dataset::Wdc,
        Dataset::Clw,
        Dataset::Ukw,
        Dataset::Frs,
        Dataset::Lvj,
        Dataset::Ptn,
    ];

    // Table IV rows are gathered while running Fig 4, plus the two small
    // graphs that Fig 4 omits.
    let mut edge_counts: Vec<(String, Vec<String>)> = Vec::new();
    let mut bench_report = BenchReport::new("fig4_seed_count");

    for dataset in datasets {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks, None);
        let cfg = SolverConfig {
            num_ranks: ranks,
            ..SolverConfig::default()
        };
        println!(
            "--- {} (|V|={}, 2|E|={}), {} ranks ---",
            dataset.name(),
            g.num_vertices(),
            g.num_arcs(),
            ranks
        );
        let mut table = Table::new([
            "|S|",
            "voronoi",
            "local_min",
            "global_min",
            "mst",
            "pruning",
            "tree_edge",
            "total",
            "|G1'| edges",
        ]);
        let mut sizes = Vec::new();
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("{}_s{}", dataset.name(), seeds.len()),
                Json::obj()
                    .with("graph", dataset.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks),
                &report,
            );
            let t = report.phase_times;
            table.row([
                seeds.len().to_string(),
                fmt_dur(t[Phase::Voronoi]),
                fmt_dur(t[Phase::LocalMinEdge]),
                fmt_dur(t[Phase::GlobalMinEdge]),
                fmt_dur(t[Phase::Mst]),
                fmt_dur(t[Phase::EdgePruning]),
                fmt_dur(t[Phase::TreeEdge]),
                fmt_dur(report.time_to_solution()),
                fmt_count(report.distance_graph_edges as u64),
            ]);
            sizes.push(fmt_count(report.tree.num_edges() as u64));
        }
        table.print();
        println!();
        edge_counts.push((dataset.name().to_string(), sizes));
    }

    // The two smallest graphs only contribute to Table IV (the paper marks
    // their largest seed counts N/A).
    for dataset in [Dataset::Mco, Dataset::Cts] {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks.min(2), None);
        let cfg = SolverConfig {
            num_ranks: ranks.min(2),
            ..SolverConfig::default()
        };
        let mut sizes = Vec::new();
        for &k in seed_counts {
            if k > g.num_vertices() / 2 {
                sizes.push("N/A".to_string());
                continue;
            }
            let seeds = pick_seeds(&g, k);
            let report = solve_partitioned(&pg, &seeds, &cfg).expect("seeds connected");
            bench_report.add_solve(
                format!("{}_s{}", dataset.name(), seeds.len()),
                Json::obj()
                    .with("graph", dataset.name())
                    .with("num_seeds", seeds.len())
                    .with("ranks", ranks.min(2)),
                &report,
            );
            sizes.push(fmt_count(report.tree.num_edges() as u64));
        }
        edge_counts.push((dataset.name().to_string(), sizes));
    }

    println!("--- Table IV: |E_S| (edges in the output Steiner tree) ---");
    let mut t4 = Table::new(
        std::iter::once("|S|".to_string()).chain(edge_counts.iter().map(|(n, _)| n.clone())),
    );
    for (i, &k) in seed_counts.iter().enumerate() {
        t4.row(
            std::iter::once(k.to_string())
                .chain(edge_counts.iter().map(|(_, sizes)| sizes[i].clone())),
        );
    }
    t4.print();
    println!();
    println!("Paper shape: |E_S| grows sublinearly in |S| (Table IV: e.g. LVJ");
    println!("105 -> 1,108 -> 7,193 -> 50,530); Voronoi time can *decrease* at the");
    println!("largest |S| (faster convergence with many sources) while the");
    println!("distance-graph phases grow.");
    bench_report.finish();
}
