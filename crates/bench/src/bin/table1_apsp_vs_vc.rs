//! Table I: runtime comparison of all-pair-shortest-path (APSP) and
//! Voronoi cell (VC) computation, single thread.
//!
//! The paper motivates Mehlhorn's formulation by showing that APSP among
//! the seeds (one Dijkstra per seed) grows linearly in |S| while one
//! multi-source Dijkstra computes all Voronoi cells at near-constant cost.
//! Expected shape: APSP/VC ratio grows roughly with |S|; at |S| = 1000 the
//! paper sees ~56x (LVJ) and ~32x (PTN).
//!
//! The `pair-buf` / `slot-buf` columns are the per-rank reduction
//! footprints the same |S| implies downstream: the replicated pipeline's
//! dense `binom(|S|, 2)` pair buffer versus the `--mst dist` Borůvka
//! pipeline's one-slot-per-component vector (first round, its maximum) —
//! the quadratic-vs-linear gap that motivates the dist mode for large
//! seed sets. Computed, not measured: no solve runs here.
//!
//! Run: `cargo run -p bench --release --bin table1_apsp_vs_vc [--quick]`

use baselines::apsp::SeedApsp;
use baselines::shortest_path::voronoi_cells;
use bench::{
    banner, fmt_dur, load_dataset, median_time, pick_seeds, quick_mode, BenchReport, Table,
};
use stgraph::datasets::Dataset;
use stgraph::json::Json;

fn main() {
    banner(
        "Table I — APSP vs Voronoi cell computation (single thread)",
        "datasets: LVJ, PTN analogues; |S| in {10, 100, 1000}",
    );
    let seed_counts: &[usize] = if quick_mode() {
        &[10, 50, 100]
    } else {
        &[10, 100, 1000]
    };
    let reps = if quick_mode() { 1 } else { 3 };

    let mut report = BenchReport::new("table1_apsp_vs_vc");
    let mut table = Table::new([
        "graph", "|S|", "APSP", "VC", "APSP/VC", "pair-buf", "slot-buf",
    ]);
    for dataset in [Dataset::Lvj, Dataset::Ptn] {
        let g = load_dataset(dataset);
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            let apsp = median_time(reps, || {
                std::hint::black_box(SeedApsp::compute(&g, &seeds));
            });
            let vc = median_time(reps, || {
                std::hint::black_box(voronoi_cells(&g, &seeds));
            });
            let pair_buf = steiner::boruvka::dense_pair_bytes(seeds.len());
            let slot_buf = steiner::boruvka::slot_bytes(seeds.len());
            table.row([
                dataset.name().to_string(),
                seeds.len().to_string(),
                fmt_dur(apsp),
                fmt_dur(vc),
                format!("{:.1}x", apsp.as_secs_f64() / vc.as_secs_f64().max(1e-9)),
                format!("{pair_buf} B"),
                format!("{slot_buf} B"),
            ]);
            report.add_metrics(
                format!("{}_s{}", dataset.name(), seeds.len()),
                Json::obj()
                    .with("graph", dataset.name())
                    .with("num_seeds", seeds.len()),
                Json::obj()
                    .with("apsp_us", apsp.as_micros() as u64)
                    .with("vc_us", vc.as_micros() as u64)
                    .with("ratio", apsp.as_secs_f64() / vc.as_secs_f64().max(1e-9))
                    .with("pair_buf_bytes", pair_buf)
                    .with("slot_buf_bytes", slot_buf),
            );
        }
    }
    table.print();
    println!();
    println!("Paper reference (absolute values differ; the growing APSP/VC gap is the shape):");
    println!("  LVJ: 49.7s/30.0s, 539.2s/35.1s, 5813.3s/104.5s (1.7x -> 15.4x -> 55.6x)");
    println!("  PTN: 26.7s/12.9s, 270.3s/26.6s, 2767.4s/85.5s (2.1x -> 10.2x -> 32.4x)");
    println!("pair-buf/slot-buf: per-rank reduction footprint of --mst replicated's");
    println!("dense pair buffer vs --mst dist's first-round slot vector (computed).");
    report.finish();
}
