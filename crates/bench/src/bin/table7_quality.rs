//! Table VII: approximation quality — D(G_S) / D_min and % error.
//!
//! The paper divides each distributed tree's total distance by SCIP-Jack's
//! optimum, averaging 1.0527 (5.3% error), far inside the 2(1 - 1/l)
//! bound. Our exact stand-in (Dreyfus–Wagner) is feasible at |S| = 10;
//! for larger seed sets the ratio is reported against a *certified lower
//! bound* on D_min, which can only over-state the true ratio (conservative
//! direction). An extra column shows the effect of the optional KMB
//! steps 4–5 refinement.
//!
//! Run: `cargo run -p bench --release --bin table7_quality [--quick]`

use baselines::{dreyfus_wagner, key_path_improve, steiner_lower_bound};
use bench::{banner, load_dataset, pick_seeds, quick_mode, BenchReport, Table};
use steiner::{solve_partitioned, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::json::Json;
use stgraph::partition::partition_graph;

fn main() {
    banner(
        "Table VII — approximation quality D(G_S)/D_min",
        "datasets: LVJ, PTN, MCO, CTS analogues; |S| in {10, 100, 1000}",
    );
    let (ranks, seed_counts): (usize, &[usize]) = if quick_mode() {
        (2, &[8, 50])
    } else {
        (4, &[10, 100, 1000])
    };

    let mut table = Table::new([
        "graph",
        "|S|",
        "reference",
        "ratio",
        "% error",
        "ratio (refined)",
        "ratio (improved)",
        "bound 2(1-1/|S|)",
    ]);
    let mut bench_report = BenchReport::new("table7_quality");
    let mut ratios = Vec::new();
    for dataset in Dataset::SMALL {
        let g = load_dataset(dataset);
        let pg = partition_graph(&g, ranks, None);
        for &k in seed_counts {
            let seeds = pick_seeds(&g, k);
            let cfg = SolverConfig {
                num_ranks: ranks,
                ..SolverConfig::default()
            };
            let plain = solve_partitioned(&pg, &seeds, &cfg).expect("connected");
            let refined = solve_partitioned(
                &pg,
                &seeds,
                &SolverConfig {
                    refine: true,
                    ..cfg
                },
            )
            .expect("connected");

            // Exact optimum where feasible, certified lower bound otherwise.
            let (reference, d_min) = if seeds.len() <= 10 {
                (
                    "exact (DW)",
                    dreyfus_wagner(&g, &seeds)
                        .expect("connected")
                        .total_distance(),
                )
            } else {
                (
                    "lower bound",
                    steiner_lower_bound(&g, &seeds).expect("connected"),
                )
            };
            let improved = key_path_improve(&g, &refined.tree, 10);
            let ratio = plain.tree.total_distance() as f64 / d_min as f64;
            let ratio_ref = refined.tree.total_distance() as f64 / d_min as f64;
            let ratio_imp = improved.tree.total_distance() as f64 / d_min as f64;
            if reference == "exact (DW)" {
                ratios.push(ratio);
            }
            let params = Json::obj()
                .with("graph", dataset.name())
                .with("num_seeds", seeds.len())
                .with("ranks", ranks);
            bench_report.add_solve(
                format!("{}_s{}", dataset.name(), seeds.len()),
                params.clone(),
                &plain,
            );
            bench_report.add_metrics(
                format!("{}_s{}_quality", dataset.name(), seeds.len()),
                params,
                Json::obj()
                    .with("reference", reference)
                    .with("d_min", d_min)
                    .with("ratio", ratio)
                    .with("ratio_refined", ratio_ref)
                    .with("ratio_improved", ratio_imp)
                    .with("bound", 2.0 * (1.0 - 1.0 / seeds.len() as f64)),
            );
            table.row([
                dataset.name().to_string(),
                seeds.len().to_string(),
                reference.to_string(),
                format!("{ratio:.4}"),
                format!("{:.2}%", (ratio - 1.0) * 100.0),
                format!("{ratio_ref:.4}"),
                format!("{ratio_imp:.4}"),
                format!("{:.4}", 2.0 * (1.0 - 1.0 / seeds.len() as f64)),
            ]);
        }
    }
    table.print();
    println!();
    if !ratios.is_empty() {
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "mean ratio vs exact: {mean:.4} ({:.2}% error) over {} instances",
            (mean - 1.0) * 100.0,
            ratios.len()
        );
    }
    println!();
    println!("Paper shape: mean ratio 1.0527 (5.3% error), max 1.1684 (PTN, |S|=10),");
    println!("improving as |S| grows — all far inside the 2(1-1/l) bound.");
    println!("Lower-bound rows over-state the true ratio by construction.");
    bench_report.finish();
}
