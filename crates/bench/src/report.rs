//! Machine-readable twins of the experiment harnesses' text output.
//!
//! Every binary in `src/bin/` prints a human-readable table *and* builds a
//! [`BenchReport`], which [`BenchReport::finish`] writes as
//! `BENCH_<name>.json` next to the `.txt` output (`bench_results/` by
//! default, `$BENCH_OUT_DIR` to override). The JSON layout:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "bench": "<name>",
//!   "quick": <bool>,
//!   "entries": [
//!     { "label": "...", "params": {...}, "kind": "solve",   "run": <RunReport> },
//!     { "label": "...", "params": {...}, "kind": "metrics", "metrics": {...} }
//!   ]
//! }
//! ```
//!
//! A `"solve"` entry embeds one [`steiner::RunReport`] (see
//! `steiner::report` for its schema contract); a `"metrics"` entry carries
//! harness-specific numbers (e.g. baseline runtimes or quality ratios)
//! that don't come from a distributed solve. [`validate`] checks this
//! shape and is what `cargo run -p xtask -- check-reports` applies to
//! every `BENCH_*.json` in CI.

use std::path::PathBuf;
use steiner::SolveReport;
use stgraph::json::Json;

/// Version of the bench-report envelope; bumped on breaking layout
/// changes, in step with the rules in `steiner::report`.
pub const SCHEMA_VERSION: u64 = 1;

/// Accumulates one harness run's machine-readable entries.
pub struct BenchReport {
    name: String,
    quick: bool,
    entries: Vec<Json>,
}

impl BenchReport {
    /// Starts a report for the harness `name` (the binary's own name);
    /// quick mode is read from the command line like the rest of the
    /// harness infrastructure.
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            quick: crate::quick_mode(),
            entries: Vec::new(),
        }
    }

    /// Records one distributed solve: `label` identifies the data point
    /// (e.g. `"lvj_s100_p4"`), `params` carries the sweep coordinates the
    /// label encodes, and the full [`steiner::RunReport`] is embedded.
    pub fn add_solve(&mut self, label: impl Into<String>, params: Json, report: &SolveReport) {
        self.entries.push(
            Json::obj()
                .with("label", label.into())
                .with("params", params)
                .with("kind", "solve")
                .with("run", report.run_report().to_json()),
        );
    }

    /// Records a data point that is not a distributed solve (baseline
    /// timings, quality ratios, export metadata, ...).
    pub fn add_metrics(&mut self, label: impl Into<String>, params: Json, metrics: Json) {
        self.entries.push(
            Json::obj()
                .with("label", label.into())
                .with("params", params)
                .with("kind", "metrics")
                .with("metrics", metrics),
        );
    }

    /// Renders the full report document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("bench", self.name.as_str())
            .with("quick", self.quick)
            .with("entries", Json::Arr(self.entries.clone()))
    }

    /// Writes `BENCH_<name>.json` into `$BENCH_OUT_DIR` (default
    /// `bench_results/`), creating the directory if needed, and prints the
    /// path so it shows up in the harness's text log.
    pub fn finish(&self) {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench_results"));
        std::fs::create_dir_all(&dir).expect("create report dir");
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty()).expect("write report");
        println!();
        println!("machine-readable report: {}", path.display());
    }
}

/// Validates a parsed report document against the envelope schema above
/// (including each embedded `RunReport`'s required keys). Returns the
/// entry count on success, a path-qualified description of the first
/// violation otherwise.
pub fn validate(doc: &Json) -> Result<usize, String> {
    if doc.get("schema_version").and_then(|v| v.as_u64()) != Some(SCHEMA_VERSION) {
        return Err(format!("schema_version must be {SCHEMA_VERSION}"));
    }
    doc.get("bench")
        .and_then(|v| v.as_str())
        .filter(|s| !s.is_empty())
        .ok_or("bench must be a non-empty string")?;
    doc.get("quick")
        .and_then(|v| v.as_bool())
        .ok_or("quick must be a bool")?;
    let entries = doc
        .get("entries")
        .and_then(|v| v.as_arr())
        .ok_or("entries must be an array")?;
    for (i, entry) in entries.iter().enumerate() {
        validate_entry(entry).map_err(|e| format!("entries[{i}]: {e}"))?;
    }
    Ok(entries.len())
}

fn validate_entry(entry: &Json) -> Result<(), String> {
    entry
        .get("label")
        .and_then(|v| v.as_str())
        .filter(|s| !s.is_empty())
        .ok_or("label must be a non-empty string")?;
    entry
        .get("params")
        .and_then(|v| v.as_obj())
        .ok_or("params must be an object")?;
    match entry.get("kind").and_then(|v| v.as_str()) {
        Some("solve") => {
            let run = entry.get("run").ok_or("solve entry missing run")?;
            steiner::report::validate_run(run).map_err(|e| format!("run: {e}"))
        }
        Some("metrics") => entry
            .get("metrics")
            .and_then(|v| v.as_obj())
            .map(|_| ())
            .ok_or_else(|| "metrics entry missing metrics object".to_string()),
        _ => Err("kind must be \"solve\" or \"metrics\"".to_string()),
    }
}

// The per-run schema contract (`validate_run`) lives in
// `steiner::report`, next to the writer — this module only validates
// the bench envelope around it.

#[cfg(test)]
mod tests {
    use super::*;
    use steiner::{solve, SolverConfig};
    use stgraph::builder::GraphBuilder;

    fn sample_solve() -> SolveReport {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1, 3);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            ..SolverConfig::default()
        };
        solve(&g, &[0, 5], &cfg).unwrap()
    }

    #[test]
    fn report_with_both_entry_kinds_validates() {
        let mut r = BenchReport::new("unit_test");
        r.add_solve(
            "line_s2_p2",
            Json::obj().with("graph", "line").with("num_seeds", 2u64),
            &sample_solve(),
        );
        r.add_metrics(
            "baseline",
            Json::obj().with("graph", "line"),
            Json::obj().with("apsp_us", 12u64).with("vc_us", 7u64),
        );
        let doc = r.to_json();
        assert_eq!(validate(&doc), Ok(2));
        // Round-trips through the parser and still validates.
        let reparsed = stgraph::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(validate(&reparsed), Ok(2));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate(&Json::obj()).is_err());

        let mut r = BenchReport::new("unit_test");
        r.add_metrics("m", Json::obj(), Json::obj());
        let mut doc = r.to_json();
        assert_eq!(validate(&doc), Ok(1));

        // Corrupt the entry kind.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(e) = &mut entries[0] {
                            for (ek, ev) in e.iter_mut() {
                                if ek == "kind" {
                                    *ev = Json::from("bogus");
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("entries[0]"), "{err}");
    }

    #[test]
    fn v1_run_report_rejected_with_migration_note() {
        let mut r = BenchReport::new("unit_test");
        r.add_solve("x", Json::obj(), &sample_solve());
        let mut doc = r.to_json();
        // Downgrade the embedded run report to v1.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(e) = &mut entries[0] {
                            for (ek, ev) in e.iter_mut() {
                                if ek == "run" {
                                    ev.insert("schema_version", 1u64);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("schema_version 1"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v2_run_report_rejected_with_migration_note() {
        let mut r = BenchReport::new("unit_test");
        r.add_solve("x", Json::obj(), &sample_solve());
        let mut doc = r.to_json();
        // Downgrade the embedded run report to v2.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(e) = &mut entries[0] {
                            for (ek, ev) in e.iter_mut() {
                                if ek == "run" {
                                    ev.insert("schema_version", 2u64);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");
        assert!(err.contains("faults"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn v3_run_report_rejected_with_migration_note() {
        let mut r = BenchReport::new("unit_test");
        r.add_solve("x", Json::obj(), &sample_solve());
        let mut doc = r.to_json();
        // Downgrade the embedded run report to v3.
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(e) = &mut entries[0] {
                            for (ek, ev) in e.iter_mut() {
                                if ek == "run" {
                                    ev.insert("schema_version", 3u64);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("schema_version 3"), "{err}");
        assert!(err.contains("stale_drops"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn traced_solve_entry_populates_and_validates_v2_fields() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1, 3);
        }
        let g = b.build();
        let cfg = SolverConfig {
            num_ranks: 2,
            trace: steiner::TraceConfig::ring(),
            metrics: steiner::MetricsConfig::On,
            ..SolverConfig::default()
        };
        let solved = solve(&g, &[0, 5], &cfg).unwrap();
        let mut r = BenchReport::new("unit_test");
        r.add_solve("traced", Json::obj(), &solved);
        let doc = r.to_json();
        assert_eq!(validate(&doc), Ok(1));
        let entries = doc.get("entries").and_then(|v| v.as_arr()).unwrap();
        let run = entries[0].get("run").unwrap();
        assert!(!run.get("critical_path").unwrap().is_null());
        assert!(!run.get("latency_quantiles").unwrap().is_null());
    }

    #[test]
    fn solve_entry_embeds_schema_compliant_run_report() {
        let mut r = BenchReport::new("unit_test");
        r.add_solve("x", Json::obj(), &sample_solve());
        let doc = r.to_json();
        let entries = doc.get("entries").and_then(|v| v.as_arr()).unwrap();
        let run = entries[0].get("run").unwrap();
        assert!(steiner::report::validate_run(run).is_ok());
        assert_eq!(
            run.get("tree")
                .and_then(|t| t.get("num_edges"))
                .and_then(|v| v.as_u64()),
            Some(5)
        );
    }
}
