//! Exact Steiner minimal trees via the Dreyfus–Wagner dynamic program.
//!
//! The paper measures approximation quality against SCIP-Jack, an exact
//! branch-and-cut ILP solver we cannot rebuild faithfully; Dreyfus–Wagner
//! provides the same ground truth (`D_min`) on the instance sizes this
//! suite evaluates. Complexity is `O(3^k n + 2^k (n log n + m))` with
//! `k = |S|` — exponential in the seed count, so the solver refuses
//! instances whose DP table would exceed a state budget.
//!
//! DP over `dp[mask][v]` = minimum weight of a tree spanning the seed
//! subset `mask` plus vertex `v`, with the classic merge + grow steps;
//! back-pointers allow reconstructing an optimal tree, not just its value.

use crate::common::{check_seeds, SteinerError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stgraph::csr::{CsrGraph, Distance, Vertex, Weight, INF};
use stgraph::steiner_tree::SteinerTree;

/// Maximum number of DP states (`2^k * n`) the solver will allocate.
/// 1<<27 states ≈ 2 GiB of table; far above anything the suite runs.
const MAX_STATES: u128 = 1 << 27;

const NO_PRED: u32 = u32::MAX;

/// Computes a Steiner *minimal* tree for `seeds` in `g`.
pub fn dreyfus_wagner(g: &CsrGraph, seeds: &[Vertex]) -> Result<SteinerTree, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    let k = seeds.len();
    let n = g.num_vertices();
    if k == 1 {
        return Ok(SteinerTree::new(seeds, []));
    }
    let states = (1u128 << k) * n as u128;
    if k >= 26 || states > MAX_STATES {
        return Err(SteinerError::ExactTooLarge { states });
    }

    let full = (1usize << k) - 1;
    // dp[mask][v]; back-pointers: pred (grow step) and merge_sub (merge step).
    let mut dp: Vec<Vec<Distance>> = vec![vec![INF; n]; full + 1];
    let mut pred: Vec<Vec<u32>> = vec![vec![NO_PRED; n]; full + 1];
    let mut merge_sub: Vec<Vec<u32>> = vec![vec![0; n]; full + 1];

    for (i, &s) in seeds.iter().enumerate() {
        dp[1 << i][s as usize] = 0;
    }

    let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();
    for mask in 1..=full {
        // Merge: combine two subtrees meeting at v.
        if mask.count_ones() > 1 {
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let rest = mask ^ sub;
                // Visit each unordered split once.
                if sub < rest {
                    sub = (sub - 1) & mask;
                    continue;
                }
                // Split borrows: sub and rest are strictly below mask.
                let (lo, hi) = dp.split_at_mut(mask);
                for (v, slot) in hi[0].iter_mut().enumerate() {
                    let (a, b) = (lo[sub][v], lo[rest][v]);
                    if a != INF && b != INF && a + b < *slot {
                        *slot = a + b;
                        merge_sub[mask][v] = sub as u32;
                        pred[mask][v] = NO_PRED;
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        // Grow: Dijkstra from all current entries of dp[mask].
        heap.clear();
        for (v, &d) in dp[mask].iter().enumerate() {
            if d != INF {
                heap.push(Reverse((d, v as u32)));
            }
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dp[mask][v as usize] {
                continue;
            }
            for (u, w) in g.edges(v) {
                let nd = d + w;
                if nd < dp[mask][u as usize] {
                    dp[mask][u as usize] = nd;
                    pred[mask][u as usize] = v;
                    merge_sub[mask][u as usize] = 0;
                    heap.push(Reverse((nd, u)));
                }
            }
        }
    }

    let root = seeds[0] as usize;
    if dp[full][root] == INF {
        return Err(crate::mehlhorn::first_disconnected_pair(g, &seeds));
    }

    // Reconstruct edges by walking the back-pointers.
    let mut edges: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    let mut stack = vec![(full, root as u32)];
    while let Some((mask, v)) = stack.pop() {
        if pred[mask][v as usize] != NO_PRED {
            let u = pred[mask][v as usize];
            let w = g.edge_weight(u, v).expect("DP grew along graph edges");
            edges.push((u, v, w));
            stack.push((mask, u));
        } else if merge_sub[mask][v as usize] != 0 {
            let sub = merge_sub[mask][v as usize] as usize;
            stack.push((sub, v));
            stack.push((mask ^ sub, v));
        }
        // Else: base case, a singleton mask anchored at its seed.
    }
    Ok(SteinerTree::new(seeds, edges))
}

/// Convenience: just the optimal distance `D_min`.
pub fn steiner_minimal_distance(g: &CsrGraph, seeds: &[Vertex]) -> Result<Distance, SteinerError> {
    dreyfus_wagner(g, seeds).map(|t| t.total_distance())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::builder::GraphBuilder;

    fn steiner_star() -> CsrGraph {
        // Triangle of weight-4 sides plus a weight-2 hub: optimum is the
        // hub star with total 6.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([
            (0, 1, 4),
            (1, 2, 4),
            (0, 2, 4),
            (0, 3, 2),
            (1, 3, 2),
            (2, 3, 2),
        ]);
        b.build()
    }

    #[test]
    fn finds_hub_star_optimum() {
        let g = steiner_star();
        let t = dreyfus_wagner(&g, &[0, 1, 2]).unwrap();
        assert_eq!(t.total_distance(), 6);
        assert!(t.validate(&g).is_ok());
        assert_eq!(t.steiner_vertices(), vec![3]);
    }

    #[test]
    fn two_seeds_is_shortest_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 3), (1, 2, 3), (0, 3, 1), (3, 2, 1)]);
        let g = b.build();
        let t = dreyfus_wagner(&g, &[0, 2]).unwrap();
        assert_eq!(t.total_distance(), 2);
    }

    #[test]
    fn all_seeds_is_mst() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 9)]);
        let g = b.build();
        let t = dreyfus_wagner(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(t.total_distance(), 6);
    }

    #[test]
    fn single_seed_empty() {
        let g = steiner_star();
        let t = dreyfus_wagner(&g, &[1]).unwrap();
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn disconnected_error() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        assert!(matches!(
            dreyfus_wagner(&g, &[0, 2]),
            Err(SteinerError::SeedsDisconnected(_, _))
        ));
    }

    #[test]
    fn too_many_seeds_rejected() {
        let mut b = GraphBuilder::new(30);
        for i in 0..29u32 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let seeds: Vec<u32> = (0..28).collect();
        assert!(matches!(
            dreyfus_wagner(&g, &seeds),
            Err(SteinerError::ExactTooLarge { .. })
        ));
    }

    #[test]
    fn optimal_beats_or_ties_approximations() {
        use crate::{kmb::kmb, mehlhorn::mehlhorn, www::www};
        let g = stgraph::datasets::Dataset::Cts.generate_tiny(21);
        let cc = stgraph::traversal::connected_components(&g);
        let verts = cc.largest_component_vertices();
        let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 5).copied().collect();
        let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
        for (name, t) in [
            ("kmb", kmb(&g, &seeds).unwrap()),
            ("mehlhorn", mehlhorn(&g, &seeds).unwrap()),
            ("www", www(&g, &seeds).unwrap()),
        ] {
            let d = t.total_distance();
            assert!(d >= opt, "{name} beat the optimum: {d} < {opt}");
            let bound = 2.0 * (1.0 - 1.0 / seeds.len() as f64) * opt as f64;
            assert!(
                d as f64 <= bound + 1e-9,
                "{name} exceeded the 2(1-1/|S|) bound: {d} > {bound}"
            );
        }
    }
}
