//! Δ-stepping SSSP (Meyer & Sanders) — the work-efficient parallel
//! shortest-path algorithm the paper discusses as the alternative Voronoi
//! kernel (§III: Ceccarello et al. used it for multi-source computation;
//! the authors chose asynchronous Bellman-Ford instead because Δ-stepping's
//! iterative bucket structure "does not naturally extend to distributed
//! memory"). This sequential implementation exists for the ablation bench:
//! it quantifies the bucket algorithm's relaxation counts against Dijkstra
//! and Bellman-Ford on the same inputs.
//!
//! Vertices live in buckets of width Δ; each round settles the lowest
//! non-empty bucket by repeatedly relaxing its *light* edges (weight < Δ),
//! then relaxes *heavy* edges once. Δ = 1 degenerates to Dijkstra-like
//! behavior, Δ = ∞ to Bellman-Ford.

use crate::shortest_path::SsspResult;
use stgraph::csr::{CsrGraph, Distance, Vertex, Weight, INF};

/// Statistics from one Δ-stepping run, for the kernel-comparison bench.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaSteppingStats {
    /// Edge relaxations attempted.
    pub relaxations: u64,
    /// Bucket-settling phases executed.
    pub phases: u64,
}

/// Runs Δ-stepping from `source` with bucket width `delta >= 1`.
pub fn delta_stepping(
    g: &CsrGraph,
    source: Vertex,
    delta: Weight,
) -> (SsspResult, DeltaSteppingStats) {
    assert!(delta >= 1, "bucket width must be at least 1");
    let n = g.num_vertices();
    let mut dist: Vec<Distance> = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];
    let mut stats = DeltaSteppingStats::default();

    // Buckets as a growable ring of vecs; vertex membership is lazy
    // (stale entries are skipped by the dist check).
    let mut buckets: Vec<Vec<Vertex>> = Vec::new();
    let bucket_of = |d: Distance| (d / delta) as usize;
    let push = |buckets: &mut Vec<Vec<Vertex>>, v: Vertex, d: Distance| {
        let b = bucket_of(d);
        if buckets.len() <= b {
            buckets.resize_with(b + 1, Vec::new);
        }
        buckets[b].push(v);
    };

    dist[source as usize] = 0;
    push(&mut buckets, source, 0);

    let mut current = 0usize;
    while current < buckets.len() {
        if buckets[current].is_empty() {
            current += 1;
            continue;
        }
        stats.phases += 1;
        // Settle the bucket: light-edge relaxations may re-insert vertices
        // into the same bucket, so iterate until it drains.
        let mut settled: Vec<Vertex> = Vec::new();
        while let Some(u) = buckets[current].pop() {
            let du = dist[u as usize];
            if bucket_of(du) != current {
                continue; // stale entry
            }
            settled.push(u);
            for (v, w) in g.edges(u) {
                if w >= delta {
                    continue; // heavy edges wait until the bucket drains
                }
                stats.relaxations += 1;
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    pred[v as usize] = Some(u);
                    push(&mut buckets, v, nd);
                }
            }
        }
        // One pass of heavy edges from everything settled in this bucket.
        for &u in &settled {
            let du = dist[u as usize];
            for (v, w) in g.edges(u) {
                if w < delta {
                    continue;
                }
                stats.relaxations += 1;
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    pred[v as usize] = Some(u);
                    push(&mut buckets, v, nd);
                }
            }
        }
        current += 1;
    }
    (SsspResult { dist, pred }, stats)
}

/// Picks the textbook bucket width: average edge weight (a common default;
/// Meyer & Sanders suggest Θ(1/max-degree) scaling for theory, but mean
/// weight works well on weighted scale-free graphs).
pub fn default_delta(g: &CsrGraph) -> Weight {
    if g.num_arcs() == 0 {
        return 1;
    }
    let sum: u128 = g
        .vertices()
        .map(|v| {
            g.neighbor_weights(v)
                .iter()
                .map(|&w| w as u128)
                .sum::<u128>()
        })
        .sum();
    ((sum / g.num_arcs() as u128) as Weight).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::dijkstra;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn matches_dijkstra_on_diamond() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 3, 1), (0, 2, 3), (2, 3, 1)]);
        let g = b.build();
        for delta in [1u64, 2, 5, 100] {
            let (r, _) = delta_stepping(&g, 0, delta);
            assert_eq!(r.dist, vec![0, 1, 3, 2], "delta = {delta}");
        }
    }

    #[test]
    fn matches_dijkstra_on_scale_free_graphs() {
        for seed in 0..4u64 {
            let g = Dataset::Lvj.generate_tiny(seed);
            let reference = dijkstra(&g, 0);
            for delta in [1u64, 16, 256, u64::MAX / 4] {
                let (r, _) = delta_stepping(&g, 0, delta);
                assert_eq!(r.dist, reference.dist, "seed {seed}, delta {delta}");
            }
        }
    }

    #[test]
    fn default_delta_is_positive() {
        let g = Dataset::Ptn.generate_tiny(1);
        assert!(default_delta(&g) >= 1);
        assert_eq!(default_delta(&stgraph::CsrGraph::empty(3)), 1);
    }

    #[test]
    fn small_delta_does_less_wasted_work_than_huge_delta() {
        let g = Dataset::Lvj.generate_tiny(5);
        let (_, tight) = delta_stepping(&g, 0, default_delta(&g));
        let (_, loose) = delta_stepping(&g, 0, u64::MAX / 4);
        assert!(
            tight.relaxations <= loose.relaxations,
            "tight {} vs loose {}",
            tight.relaxations,
            loose.relaxations
        );
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 4);
        let g = b.build();
        let (r, _) = delta_stepping(&g, 0, 2);
        assert_eq!(r.dist[2], INF);
    }
}
