//! The KMB algorithm (Kou, Markowsky, Berman 1981) — Algorithm 1 of the
//! paper, the classic `2(1 - 1/l)`-approximation.
//!
//! 1. Build the complete distance graph `G_1` over the seeds (APSP).
//! 2. MST `G_2` of `G_1`.
//! 3. Replace each `G_2` edge by a corresponding shortest path in `G`.
//! 4. MST `G_4` of that subgraph.
//! 5. Prune until no leaf is a Steiner vertex.

use crate::apsp::SeedApsp;
use crate::common::{check_seeds, finalize_subgraph, SteinerError};
use stgraph::csr::{CsrGraph, Vertex, Weight, INF};
use stgraph::mst::{kruskal, AuxEdge};
use stgraph::steiner_tree::SteinerTree;

/// Runs KMB. Errors if the seeds are not pairwise connected.
pub fn kmb(g: &CsrGraph, seeds: &[Vertex]) -> Result<SteinerTree, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    if seeds.len() == 1 {
        return Ok(SteinerTree::new(seeds, []));
    }
    // Step 1: complete distance graph over seeds.
    let apsp = SeedApsp::compute(g, &seeds);
    let k = seeds.len();
    let mut g1: Vec<AuxEdge> = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            let d = apsp.seed_dist(i, j);
            if d == INF {
                return Err(SteinerError::SeedsDisconnected(seeds[i], seeds[j]));
            }
            g1.push((i as u32, j as u32, d));
        }
    }
    // Step 2: MST of G_1.
    let g2 = kruskal(k, &g1);
    // Step 3: expand each MST edge into a shortest path in G.
    let mut subgraph: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    for &ei in &g2 {
        let (i, j, _) = g1[ei];
        let path = apsp.path(i as usize, seeds[j as usize]);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let w = g.edge_weight(a, b).expect("path edges exist");
            subgraph.push((a, b, w));
        }
    }
    // Steps 4-5: MST of the subgraph, prune Steiner leaves.
    Ok(finalize_subgraph(&seeds, subgraph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::builder::GraphBuilder;

    /// The classic KMB worked example: a star whose center shortcut beats
    /// the pairwise shortest paths.
    fn steiner_star() -> CsrGraph {
        // Seeds 0,1,2 on a triangle with weight-4 sides; hub 3 connects to
        // each seed with weight 2. Optimal: the hub star, total 6.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([
            (0, 1, 4),
            (1, 2, 4),
            (0, 2, 4),
            (0, 3, 2),
            (1, 3, 2),
            (2, 3, 2),
        ]);
        b.build()
    }

    #[test]
    fn kmb_two_seeds_is_shortest_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]);
        let g = b.build();
        let t = kmb(&g, &[0, 3]).unwrap();
        assert_eq!(t.total_distance(), 3);
        assert!(t.validate(&g).is_ok());
    }

    #[test]
    fn kmb_on_star_within_bound() {
        let g = steiner_star();
        let t = kmb(&g, &[0, 1, 2]).unwrap();
        assert!(t.validate(&g).is_ok());
        // Optimal is 6 (hub star); KMB guarantees <= 2(1 - 1/3) * 6 = 8.
        assert!(t.total_distance() <= 8, "got {}", t.total_distance());
    }

    #[test]
    fn kmb_single_seed() {
        let g = steiner_star();
        let t = kmb(&g, &[2]).unwrap();
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn kmb_disconnected_seeds_error() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        assert_eq!(kmb(&g, &[0, 3]), Err(SteinerError::SeedsDisconnected(0, 3)));
    }

    #[test]
    fn kmb_all_vertices_seeds_is_mst() {
        // When S = V, the Steiner tree is the MST of G.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 10), (0, 2, 9)]);
        let g = b.build();
        let t = kmb(&g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(t.total_distance(), 6);
    }
}
