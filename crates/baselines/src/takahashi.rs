//! The Takahashi–Matsuyama algorithm (1980) — the paper's reference [13],
//! the original shortest-path-heuristic 2-approximation with bound
//! `2(1 - 1/|S|)`.
//!
//! Grow the tree from one terminal; repeatedly attach the terminal nearest
//! to the *current tree* via a shortest path. Each round is one
//! multi-source Dijkstra from every tree vertex, so the whole algorithm is
//! `O(|S| (V + E) log V)` — more work than Mehlhorn but often better
//! solution quality in practice (it re-uses already-built tree segments).

use crate::common::{check_seeds, SteinerError};
use crate::mehlhorn::first_disconnected_pair;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stgraph::csr::{CsrGraph, Distance, Vertex, Weight, INF};
use stgraph::steiner_tree::SteinerTree;

/// Runs Takahashi–Matsuyama starting from the smallest seed id.
pub fn takahashi(g: &CsrGraph, seeds: &[Vertex]) -> Result<SteinerTree, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    if seeds.len() == 1 {
        return Ok(SteinerTree::new(seeds, []));
    }
    let n = g.num_vertices();
    let mut in_tree = vec![false; n];
    in_tree[seeds[0] as usize] = true;
    let mut edges: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    let mut remaining: Vec<Vertex> = seeds[1..].to_vec();

    // Reused scratch arrays for the per-round Dijkstra.
    let mut dist: Vec<Distance> = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];

    while !remaining.is_empty() {
        // Multi-source Dijkstra from all current tree vertices.
        dist.fill(INF);
        pred.fill(None);
        let mut heap: BinaryHeap<Reverse<(Distance, Vertex)>> = BinaryHeap::new();
        for v in 0..n as Vertex {
            if in_tree[v as usize] {
                dist[v as usize] = 0;
                heap.push(Reverse((0, v)));
            }
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.edges(u) {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    pred[v as usize] = Some(u);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        // Nearest unconnected terminal; ties to the smaller id.
        let (idx, &next) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| (dist[t as usize], t))
            .expect("remaining non-empty");
        if dist[next as usize] == INF {
            return Err(first_disconnected_pair(g, &seeds));
        }
        remaining.swap_remove(idx);
        // Graft the shortest path onto the tree.
        let mut cur = next;
        while let Some(p) = pred[cur as usize] {
            if in_tree[cur as usize] {
                break;
            }
            in_tree[cur as usize] = true;
            let w = g.edge_weight(p, cur).expect("path edge exists");
            edges.push((p, cur, w));
            cur = p;
        }
    }
    Ok(SteinerTree::new(seeds, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::dreyfus_wagner;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn two_seeds_is_shortest_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]);
        let g = b.build();
        let t = takahashi(&g, &[0, 3]).unwrap();
        assert_eq!(t.total_distance(), 3);
        assert!(t.validate(&g).is_ok());
    }

    #[test]
    fn hub_star_within_bound() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([
            (0, 1, 4),
            (1, 2, 4),
            (0, 2, 4),
            (0, 3, 2),
            (1, 3, 2),
            (2, 3, 2),
        ]);
        let g = b.build();
        let t = takahashi(&g, &[0, 1, 2]).unwrap();
        // Shortest-path ties resolve to the direct edges here, so TM pays
        // the full 8 — exactly the 2(1 - 1/3) * 6 bound, not the optimum.
        assert!(t.validate(&g).is_ok());
        assert!(t.total_distance() <= 8);
    }

    #[test]
    fn within_bound_on_random_instances() {
        for seed in 0..6u64 {
            let g = Dataset::Cts.generate_tiny(seed);
            let cc = stgraph::traversal::connected_components(&g);
            let verts = cc.largest_component_vertices();
            let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 6).copied().collect();
            let t = takahashi(&g, &seeds).unwrap();
            assert!(t.validate(&g).is_ok());
            let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
            let bound = 2.0 * (1.0 - 1.0 / seeds.len() as f64) * opt as f64;
            assert!(
                t.total_distance() as f64 <= bound + 1e-9,
                "instance {seed}: {} > {bound}",
                t.total_distance()
            );
        }
    }

    #[test]
    fn disconnected_error() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        assert!(matches!(
            takahashi(&g, &[0, 2]),
            Err(SteinerError::SeedsDisconnected(_, _))
        ));
    }

    #[test]
    fn single_seed() {
        let g = Dataset::Cts.generate_tiny(1);
        assert_eq!(takahashi(&g, &[9]).unwrap().num_edges(), 0);
    }
}
