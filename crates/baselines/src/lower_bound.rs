//! Certified lower bounds on the Steiner minimal distance `D_min`.
//!
//! The paper's Table VII divides each approximate tree's distance by
//! `D_min` from SCIP-Jack. Our exact DP replaces SCIP-Jack for small seed
//! counts; for larger ones (where exact is exponential) we report ratios
//! against a certified lower bound instead, which over-estimates the true
//! ratio — an error in the conservative direction.
//!
//! Two classic bounds, combined by max:
//!
//! - **Pairwise**: `D_min >= max_{s,t in S} d_1(s, t)` — any Steiner tree
//!   contains a path between every seed pair.
//! - **Distance-graph MST halved**: the KMB analysis shows
//!   `D(MST(G_1)) <= 2 (1 - 1/l) D_min <= 2 D_min`, hence
//!   `D_min >= D(MST(G_1)) / 2`, and Mehlhorn's theorem lets us use the
//!   cheaper `G_1'` (same MST weight).

use crate::common::{check_seeds, cross_edges, min_cross_edges, SteinerError};
use crate::shortest_path::voronoi_cells;
use std::collections::HashMap;
use stgraph::csr::{CsrGraph, Distance, Vertex};
use stgraph::mst::{kruskal, tree_weight, AuxEdge};

/// Computes `max(pairwise, mst_g1/2)` — a certified lower bound on `D_min`.
/// Errors if the seeds are not pairwise connected.
pub fn steiner_lower_bound(g: &CsrGraph, seeds: &[Vertex]) -> Result<Distance, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    if seeds.len() == 1 {
        return Ok(0);
    }
    let vr = voronoi_cells(g, &seeds);
    let candidates = min_cross_edges(&cross_edges(g, &vr));
    let seed_index: HashMap<Vertex, u32> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let aux: Vec<AuxEdge> = candidates
        .iter()
        .map(|e| (seed_index[&e.cells.0], seed_index[&e.cells.1], e.total))
        .collect();
    let chosen = kruskal(seeds.len(), &aux);
    if chosen.len() + 1 < seeds.len() {
        return Err(crate::mehlhorn::first_disconnected_pair(g, &seeds));
    }
    let mst_bound = tree_weight(&aux, &chosen).div_ceil(2);

    // Pairwise bound from one Dijkstra: max_s d_1(seeds[0], s) is a real
    // seed-pair distance, so it certifies D_min >= that value (and is a
    // 2-approximation of the full seed diameter).
    let far = crate::shortest_path::dijkstra(g, seeds[0]);
    let pairwise = seeds
        .iter()
        .map(|&s| far.dist[s as usize])
        .max()
        .unwrap_or(0);

    Ok(mst_bound.max(pairwise))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::dreyfus_wagner;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn bound_below_exact_on_star() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([
            (0, 1, 4),
            (1, 2, 4),
            (0, 2, 4),
            (0, 3, 2),
            (1, 3, 2),
            (2, 3, 2),
        ]);
        let g = b.build();
        let lb = steiner_lower_bound(&g, &[0, 1, 2]).unwrap();
        let opt = dreyfus_wagner(&g, &[0, 1, 2]).unwrap().total_distance();
        assert!(lb <= opt, "lb {lb} > opt {opt}");
        assert!(lb > 0);
    }

    #[test]
    fn bound_is_tight_for_two_seeds() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1, 5), (1, 2, 5)]);
        let g = b.build();
        let lb = steiner_lower_bound(&g, &[0, 2]).unwrap();
        assert_eq!(lb, 10);
    }

    #[test]
    fn bound_below_exact_on_random_instances() {
        for seed in 0..8u64 {
            let g = Dataset::Cts.generate_tiny(seed);
            let cc = stgraph::traversal::connected_components(&g);
            let verts = cc.largest_component_vertices();
            let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 6).copied().collect();
            let lb = steiner_lower_bound(&g, &seeds).unwrap();
            let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
            assert!(lb <= opt, "instance {seed}: lb {lb} > opt {opt}");
            // The bound should not be vacuous.
            assert!(lb * 4 >= opt, "instance {seed}: lb {lb} too weak for {opt}");
        }
    }

    #[test]
    fn single_seed_bound_is_zero() {
        let g = Dataset::Cts.generate_tiny(0);
        assert_eq!(steiner_lower_bound(&g, &[3]).unwrap(), 0);
    }
}
