//! The WWW algorithm (Wu, Widmayer, Wong 1986): a generalized-MST
//! formulation of the 2-approximation.
//!
//! WWW grows shortest-path fragments from all terminals simultaneously and
//! merges fragments Kruskal-style in increasing connecting-path order. The
//! distinguishing cost profile versus Mehlhorn (and the reason the paper
//! calls it "MST computation on the entire graph" with poor parallel
//! efficiency) is that the merge phase sorts and scans *every* cross-cell
//! edge of `G` rather than first reducing to one candidate per cell pair.
//! The selected bridges are exactly an MST of Mehlhorn's `G_1'`, so the
//! `2(1 - 1/l)` bound is inherited.

use crate::common::{check_seeds, cross_edges, expand_cross_edge, finalize_subgraph, SteinerError};
use crate::mehlhorn::first_disconnected_pair;
use crate::shortest_path::voronoi_cells;
use std::collections::HashMap;
use stgraph::csr::{CsrGraph, Vertex, Weight};
use stgraph::dsu::Dsu;
use stgraph::steiner_tree::SteinerTree;

/// Runs the WWW algorithm.
pub fn www(g: &CsrGraph, seeds: &[Vertex]) -> Result<SteinerTree, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    if seeds.len() == 1 {
        return Ok(SteinerTree::new(seeds, []));
    }
    // Fragment growth: identical label structure to Voronoi cells.
    let vr = voronoi_cells(g, &seeds);

    // Generalized Kruskal over *all* cross-cell edges, cheapest connecting
    // path first (no per-pair reduction — that's Mehlhorn's refinement).
    let mut all = cross_edges(g, &vr);
    all.sort_unstable_by_key(|e| (e.total, e.cells, e.bridge));

    let seed_index: HashMap<Vertex, u32> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let mut dsu = Dsu::new(seeds.len());
    let mut subgraph: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    let mut merges = 0;
    for e in &all {
        let (a, b) = (seed_index[&e.cells.0], seed_index[&e.cells.1]);
        if dsu.union(a, b) {
            expand_cross_edge(g, &vr, e, &mut subgraph);
            merges += 1;
            if merges + 1 == seeds.len() {
                break;
            }
        }
    }
    if merges + 1 < seeds.len() {
        return Err(first_disconnected_pair(g, &seeds));
    }
    Ok(finalize_subgraph(&seeds, subgraph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mehlhorn::mehlhorn;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn two_seeds_shortest_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 2), (1, 2, 2), (2, 3, 2), (0, 3, 100)]);
        let g = b.build();
        let t = www(&g, &[0, 3]).unwrap();
        assert_eq!(t.total_distance(), 6);
        assert!(t.validate(&g).is_ok());
    }

    #[test]
    fn matches_mehlhorn_tree_weight() {
        // Both select an MST of G_1'; with the same tie-breaking data the
        // chosen bridges have equal total weight.
        for seed in 0..5u64 {
            let g = Dataset::Cts.generate_tiny(seed);
            let cc = stgraph::traversal::connected_components(&g);
            let verts = cc.largest_component_vertices();
            let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 6).copied().collect();
            let tw = www(&g, &seeds).unwrap();
            let tm = mehlhorn(&g, &seeds).unwrap();
            assert_eq!(
                tw.total_distance(),
                tm.total_distance(),
                "instance seed {seed}"
            );
        }
    }

    #[test]
    fn disconnected_error() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        assert!(matches!(
            www(&g, &[1, 2]),
            Err(SteinerError::SeedsDisconnected(_, _))
        ));
    }

    #[test]
    fn valid_on_scale_free_graph() {
        let g = Dataset::Ptn.generate_tiny(9);
        let cc = stgraph::traversal::connected_components(&g);
        let verts = cc.largest_component_vertices();
        let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 10).copied().collect();
        let t = www(&g, &seeds).unwrap();
        assert!(t.validate(&g).is_ok(), "{:?}", t.validate(&g));
    }
}
