//! Mehlhorn's algorithm (1988): the Voronoi-cell formulation of KMB, and
//! the basis of the paper's parallel algorithm.
//!
//! Instead of APSP among seeds, compute the Voronoi cell of every seed with
//! one multi-source Dijkstra, reduce the cross-cell edges to the cheapest
//! bridge per cell pair (`G_1'`), take its MST, expand the chosen bridges
//! into shortest paths, then apply KMB steps 4–5. Mehlhorn proves every MST
//! of `G_1'` is an MST of the KMB distance graph `G_1`, so the
//! `2(1 - 1/l)` bound carries over.

use crate::common::{
    check_seeds, cross_edges, expand_cross_edge, finalize_subgraph, min_cross_edges, SteinerError,
};
use crate::shortest_path::voronoi_cells;
use std::collections::HashMap;
use stgraph::csr::{CsrGraph, Vertex, Weight};
use stgraph::mst::{kruskal, AuxEdge};
use stgraph::steiner_tree::SteinerTree;

/// Runs Mehlhorn's sequential algorithm.
pub fn mehlhorn(g: &CsrGraph, seeds: &[Vertex]) -> Result<SteinerTree, SteinerError> {
    let seeds = check_seeds(g, seeds)?;
    if seeds.len() == 1 {
        return Ok(SteinerTree::new(seeds, []));
    }
    // Step 1: Voronoi cells of all seeds at once.
    let vr = voronoi_cells(g, &seeds);
    // Step 2: distance graph G_1' = cheapest bridge per cell pair.
    let candidates = min_cross_edges(&cross_edges(g, &vr));
    // Compact seed ids for the MST kernel.
    let seed_index: HashMap<Vertex, u32> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    let aux: Vec<AuxEdge> = candidates
        .iter()
        .map(|e| (seed_index[&e.cells.0], seed_index[&e.cells.1], e.total))
        .collect();
    // Step 3: MST of G_1'. A spanning tree of k seeds has k-1 edges; fewer
    // means some seeds are not mutually reachable.
    let chosen = kruskal(seeds.len(), &aux);
    if chosen.len() + 1 < seeds.len() {
        return Err(first_disconnected_pair(g, &seeds));
    }
    // Step 4: expand chosen bridges into graph edges.
    let mut subgraph: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    for &i in &chosen {
        expand_cross_edge(g, &vr, &candidates[i], &mut subgraph);
    }
    // Steps 5-6 (KMB 4-5): final MST + Steiner-leaf pruning.
    Ok(finalize_subgraph(&seeds, subgraph))
}

/// Identifies a concrete disconnected seed pair for the error message.
pub(crate) fn first_disconnected_pair(g: &CsrGraph, seeds: &[Vertex]) -> SteinerError {
    let cc = stgraph::traversal::connected_components(g);
    for w in seeds.windows(2) {
        if !cc.same_component(w[0], w[1]) {
            return SteinerError::SeedsDisconnected(w[0], w[1]);
        }
    }
    // Fall back to the first pair; callers only reach this when some pair
    // is disconnected.
    SteinerError::SeedsDisconnected(seeds[0], *seeds.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmb::kmb;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn two_seeds_shortest_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]);
        let g = b.build();
        let t = mehlhorn(&g, &[0, 3]).unwrap();
        assert_eq!(t.total_distance(), 3);
        assert!(t.validate(&g).is_ok());
    }

    #[test]
    fn matches_kmb_distance_on_small_graphs() {
        // Mehlhorn's MST of G_1' is an MST of G_1, so with identical final
        // steps the total distance matches KMB's whenever shortest paths
        // are unique; on random weighted graphs ties are rare but possible,
        // so compare with tolerance zero only on equality of *bounds*:
        // both must be valid and KMB's distance can differ only via ties.
        let g = Dataset::Cts.generate_tiny(11);
        let seeds = [3u32, 77, 150, 200, 410];
        let tm = mehlhorn(&g, &seeds).unwrap();
        let tk = kmb(&g, &seeds).unwrap();
        assert!(tm.validate(&g).is_ok());
        assert!(tk.validate(&g).is_ok());
        // Identical MST-of-G1 weight implies close agreement; allow ties.
        let (a, b) = (tm.total_distance(), tk.total_distance());
        let diff = a.abs_diff(b) as f64 / a.max(b) as f64;
        assert!(diff < 0.05, "mehlhorn {a} vs kmb {b}");
    }

    #[test]
    fn disconnected_seeds_error() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        assert!(matches!(
            mehlhorn(&g, &[0, 3]),
            Err(SteinerError::SeedsDisconnected(_, _))
        ));
    }

    #[test]
    fn single_seed() {
        let g = Dataset::Cts.generate_tiny(1);
        let t = mehlhorn(&g, &[5]).unwrap();
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn tree_is_valid_on_scale_free_graph() {
        let g = Dataset::Lvj.generate_tiny(5);
        let cc = stgraph::traversal::connected_components(&g);
        let verts = cc.largest_component_vertices();
        let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 8).copied().collect();
        let t = mehlhorn(&g, &seeds).unwrap();
        assert!(t.validate(&g).is_ok(), "{:?}", t.validate(&g));
    }
}
