//! Helpers shared by the sequential Steiner algorithms: errors, the final
//! "MST of the induced subgraph + prune Steiner leaves" steps (KMB steps
//! 4–5), and cross-cell distance-graph construction from Voronoi data.

use crate::shortest_path::VoronoiResult;
use std::collections::HashMap;
use stgraph::csr::{CsrGraph, Distance, Vertex, Weight};
use stgraph::mst::{kruskal, AuxEdge};
use stgraph::steiner_tree::SteinerTree;

pub use stgraph::error::SteinerError;

/// Validates a seed set against a graph: non-empty, in range, distinct.
/// Returns the deduplicated seed list.
pub fn check_seeds(g: &CsrGraph, seeds: &[Vertex]) -> Result<Vec<Vertex>, SteinerError> {
    if seeds.is_empty() {
        return Err(SteinerError::NoSeeds);
    }
    let mut out = seeds.to_vec();
    for &s in &out {
        if s as usize >= g.num_vertices() {
            return Err(SteinerError::SeedOutOfRange(s));
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// A cross-cell candidate: the bridge edge `(u, v)` and the full path
/// length `d1(s, u) + d(u, v) + d1(v, t)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossEdge {
    /// Seed pair `(s, t)` with `s < t`.
    pub cells: (Vertex, Vertex),
    /// Bridge endpoints `(u, v)` with `u ∈ N(s)`, `v ∈ N(t)`.
    pub bridge: (Vertex, Vertex),
    /// Bridge edge weight `d(u, v)`.
    pub bridge_weight: Weight,
    /// Total connecting-path length `d1'(s, t)` through this bridge.
    pub total: Distance,
}

/// Enumerates every cross-cell edge of `g` under the Voronoi labelling,
/// one [`CrossEdge`] per undirected graph edge whose endpoints lie in
/// different cells.
pub fn cross_edges(g: &CsrGraph, vr: &VoronoiResult) -> Vec<CrossEdge> {
    let mut out = Vec::new();
    for (u, v, w) in g.undirected_edges() {
        let (Some(s), Some(t)) = (vr.src[u as usize], vr.src[v as usize]) else {
            continue;
        };
        if s == t {
            continue;
        }
        let total = vr.dist[u as usize] + w + vr.dist[v as usize];
        let (cells, bridge) = if s < t {
            ((s, t), (u, v))
        } else {
            ((t, s), (v, u))
        };
        out.push(CrossEdge {
            cells,
            bridge,
            bridge_weight: w,
            total,
        });
    }
    out
}

/// Reduces cross-cell edges to the unique minimum per cell pair —
/// Mehlhorn's distance graph `G_1'`. Ties break on the lexicographically
/// smallest `(total, bridge)` so the result is deterministic.
pub fn min_cross_edges(edges: &[CrossEdge]) -> Vec<CrossEdge> {
    let mut best: HashMap<(Vertex, Vertex), CrossEdge> = HashMap::new();
    for &e in edges {
        best.entry(e.cells)
            .and_modify(|cur| {
                if (e.total, e.bridge) < (cur.total, cur.bridge) {
                    *cur = e;
                }
            })
            .or_insert(e);
    }
    let mut out: Vec<CrossEdge> = best.into_values().collect();
    out.sort_unstable_by_key(|e| (e.cells, e.total));
    out
}

/// Expands a chosen cross edge into concrete graph edges: the bridge plus
/// the predecessor paths from both endpoints back to their seeds.
pub fn expand_cross_edge(
    g: &CsrGraph,
    vr: &VoronoiResult,
    e: &CrossEdge,
    into: &mut Vec<(Vertex, Vertex, Weight)>,
) {
    let (u, v) = e.bridge;
    into.push((u, v, e.bridge_weight));
    for endpoint in [u, v] {
        let mut cur = endpoint;
        while let Some(p) = vr.pred[cur as usize] {
            let w = g
                .edge_weight(p, cur)
                .expect("predecessor edges exist in the graph");
            into.push((p, cur, w));
            cur = p;
        }
    }
}

/// KMB steps 4–5: given an edge multiset forming a connected subgraph that
/// spans all seeds, computes an MST of that subgraph and then repeatedly
/// deletes non-seed leaves. Returns the finished tree.
pub fn finalize_subgraph(
    seeds: &[Vertex],
    edges: impl IntoIterator<Item = (Vertex, Vertex, Weight)>,
) -> SteinerTree {
    // Deduplicate and compact vertex ids for the MST kernel.
    let mut uniq: Vec<(Vertex, Vertex, Weight)> = edges
        .into_iter()
        .map(|(u, v, w)| if u < v { (u, v, w) } else { (v, u, w) })
        .collect();
    uniq.sort_unstable();
    uniq.dedup();

    let mut ids: HashMap<Vertex, u32> = HashMap::new();
    let mut rev: Vec<Vertex> = Vec::new();
    let id_of = |v: Vertex, ids: &mut HashMap<Vertex, u32>, rev: &mut Vec<Vertex>| -> u32 {
        *ids.entry(v).or_insert_with(|| {
            rev.push(v);
            (rev.len() - 1) as u32
        })
    };
    let aux: Vec<AuxEdge> = uniq
        .iter()
        .map(|&(u, v, w)| {
            (
                id_of(u, &mut ids, &mut rev),
                id_of(v, &mut ids, &mut rev),
                w,
            )
        })
        .collect();
    // Seeds with no incident subgraph edge (|S| = 1 case) still need ids.
    for &s in seeds {
        id_of(s, &mut ids, &mut rev);
    }

    let chosen = kruskal(rev.len(), &aux);
    let mut tree_edges: Vec<(Vertex, Vertex, Weight)> = chosen.iter().map(|&i| uniq[i]).collect();

    // Iteratively prune non-seed leaves.
    let seed_set: std::collections::HashSet<Vertex> = seeds.iter().copied().collect();
    loop {
        let mut degree: HashMap<Vertex, u32> = HashMap::new();
        for &(u, v, _) in &tree_edges {
            *degree.entry(u).or_default() += 1;
            *degree.entry(v).or_default() += 1;
        }
        let before = tree_edges.len();
        tree_edges.retain(|&(u, v, _)| {
            let u_prunable = degree[&u] == 1 && !seed_set.contains(&u);
            let v_prunable = degree[&v] == 1 && !seed_set.contains(&v);
            !(u_prunable || v_prunable)
        });
        if tree_edges.len() == before {
            break;
        }
    }
    SteinerTree::new(seeds.iter().copied(), tree_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest_path::voronoi_cells;
    use stgraph::builder::GraphBuilder;

    #[test]
    fn check_seeds_rejects_empty() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(check_seeds(&g, &[]), Err(SteinerError::NoSeeds));
    }

    #[test]
    fn check_seeds_rejects_out_of_range() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(
            check_seeds(&g, &[0, 9]),
            Err(SteinerError::SeedOutOfRange(9))
        );
    }

    #[test]
    fn check_seeds_dedups() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(check_seeds(&g, &[2, 0, 2]).unwrap(), vec![0, 2]);
    }

    #[test]
    fn cross_edges_on_split_path() {
        // 0 -1- 1 -5- 2 -1- 3, seeds 0 and 3.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 5), (2, 3, 1)]);
        let g = b.build();
        let vr = voronoi_cells(&g, &[0, 3]);
        let ce = cross_edges(&g, &vr);
        assert_eq!(ce.len(), 1);
        assert_eq!(ce[0].cells, (0, 3));
        assert_eq!(ce[0].bridge, (1, 2));
        assert_eq!(ce[0].total, 1 + 5 + 1);
    }

    #[test]
    fn min_cross_edges_keeps_cheapest_per_pair() {
        // Two parallel routes between cells of 0 and 3.
        let mut b = GraphBuilder::new(6);
        b.extend_edges([
            (0, 1, 1),
            (1, 3, 10), // route A: total 1+10+0
            (0, 2, 1),
            (2, 3, 2), // route B: total 1+2+0
            (4, 5, 1), // unrelated component
        ]);
        let g = b.build();
        let vr = voronoi_cells(&g, &[0, 3]);
        let all = cross_edges(&g, &vr);
        let min = min_cross_edges(&all);
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].bridge, (2, 3));
        assert_eq!(min[0].total, 3);
    }

    #[test]
    fn finalize_prunes_steiner_leaves() {
        // Tree: 0-1, 1-2, 1-3 where only 0 and 2 are seeds; 3 must go.
        let t = finalize_subgraph(&[0, 2], [(0, 1, 1), (1, 2, 1), (1, 3, 1)]);
        assert_eq!(t.edges, vec![(0, 1, 1), (1, 2, 1)]);
    }

    #[test]
    fn finalize_breaks_cycles_minimally() {
        // Cycle 0-1-2-0; seeds 0, 1, 2. MST must drop the heaviest edge.
        let t = finalize_subgraph(&[0, 1, 2], [(0, 1, 1), (1, 2, 2), (0, 2, 9)]);
        assert_eq!(t.total_distance(), 3);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn expand_cross_edge_includes_paths() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 1), (1, 2, 5), (2, 3, 1), (3, 4, 1)]);
        let g = b.build();
        let vr = voronoi_cells(&g, &[0, 4]);
        let ce = cross_edges(&g, &vr);
        let mut edges = Vec::new();
        expand_cross_edge(&g, &vr, &ce[0], &mut edges);
        let mut norm: Vec<_> = edges
            .into_iter()
            .map(|(u, v, w)| (u.min(v), u.max(v), w))
            .collect();
        norm.sort_unstable();
        assert_eq!(norm, vec![(0, 1, 1), (1, 2, 5), (2, 3, 1), (3, 4, 1)]);
    }
}
