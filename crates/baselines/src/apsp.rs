//! Seed-pair all-pairs-shortest-paths — the expensive Step 1 of the KMB
//! algorithm that the paper (and Mehlhorn) replaces with Voronoi cells.
//! Table I compares exactly these two kernels.

use crate::shortest_path::{dijkstra, SsspResult};
use stgraph::csr::{CsrGraph, Distance, Vertex};

/// Shortest-path data between every pair of seeds: one Dijkstra per seed.
#[derive(Clone, Debug)]
pub struct SeedApsp {
    /// The seeds, in the order given.
    pub seeds: Vec<Vertex>,
    /// Per-seed SSSP results, parallel to `seeds`.
    pub sssp: Vec<SsspResult>,
}

impl SeedApsp {
    /// Runs one Dijkstra per seed. `O(|S| (V + E) log V)`.
    pub fn compute(g: &CsrGraph, seeds: &[Vertex]) -> Self {
        SeedApsp {
            seeds: seeds.to_vec(),
            sssp: seeds.iter().map(|&s| dijkstra(g, s)).collect(),
        }
    }

    /// Shortest distance from `seeds[i]` to vertex `v`.
    pub fn dist(&self, i: usize, v: Vertex) -> Distance {
        self.sssp[i].dist[v as usize]
    }

    /// Shortest distance between `seeds[i]` and `seeds[j]`.
    pub fn seed_dist(&self, i: usize, j: usize) -> Distance {
        self.sssp[i].dist[self.seeds[j] as usize]
    }

    /// The vertices of a shortest path from `seeds[i]` to `v`, from seed to
    /// `v` inclusive. Panics if unreachable.
    pub fn path(&self, i: usize, v: Vertex) -> Vec<Vertex> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.sssp[i].pred[cur as usize] {
            path.push(p);
            cur = p;
        }
        assert_eq!(
            cur, self.seeds[i],
            "vertex {v} unreachable from seed {}",
            self.seeds[i]
        );
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::builder::GraphBuilder;

    fn line() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2)]);
        b.build()
    }

    #[test]
    fn seed_distances_symmetric() {
        let g = line();
        let apsp = SeedApsp::compute(&g, &[0, 2, 4]);
        assert_eq!(apsp.seed_dist(0, 1), 4);
        assert_eq!(apsp.seed_dist(1, 0), 4);
        assert_eq!(apsp.seed_dist(0, 2), 8);
    }

    #[test]
    fn path_reconstruction() {
        let g = line();
        let apsp = SeedApsp::compute(&g, &[0, 4]);
        assert_eq!(apsp.path(0, 3), vec![0, 1, 2, 3]);
        assert_eq!(apsp.path(1, 0), vec![4, 3, 2, 1, 0]);
        assert_eq!(apsp.path(0, 0), vec![0]);
    }
}
