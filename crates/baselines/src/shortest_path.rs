//! Sequential shortest-path kernels: Dijkstra, Bellman–Ford, and
//! multi-source Dijkstra (which computes exact Voronoi cells in one pass —
//! the sequential reference for the distributed Voronoi kernel).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stgraph::csr::{CsrGraph, Distance, Vertex, INF};

/// Result of a single-source shortest path computation.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Shortest distance from the source (`INF` if unreachable).
    pub dist: Vec<Distance>,
    /// Predecessor on a shortest path (`None` for the source and
    /// unreachable vertices).
    pub pred: Vec<Option<Vertex>>,
}

/// Dijkstra's algorithm with a binary heap. `O((V + E) log V)`.
///
/// ```
/// use baselines::shortest_path::dijkstra;
/// use stgraph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_edge(1, 2, 5);
/// b.add_edge(0, 2, 100);
/// let g = b.build();
/// let sssp = dijkstra(&g, 0);
/// assert_eq!(sssp.dist, vec![0, 5, 10]);
/// assert_eq!(sssp.pred[2], Some(1)); // via the cheap route
/// ```
pub fn dijkstra(g: &CsrGraph, source: Vertex) -> SsspResult {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (v, w) in g.edges(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = Some(u);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    SsspResult { dist, pred }
}

/// Textbook Bellman–Ford (round-based edge relaxation). `O(V * E)` worst
/// case, provided for cross-checking the asynchronous distributed kernel,
/// which shares its relaxation rule.
pub fn bellman_ford(g: &CsrGraph, source: Vertex) -> SsspResult {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];
    dist[source as usize] = 0;
    // With positive weights, at most n - 1 rounds are needed; stop early
    // when a round makes no change.
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for u in g.vertices() {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            for (v, w) in g.edges(u) {
                if du + w < dist[v as usize] {
                    dist[v as usize] = du + w;
                    pred[v as usize] = Some(u);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    SsspResult { dist, pred }
}

/// Result of a multi-source Dijkstra: exact Voronoi cells.
#[derive(Clone, Debug)]
pub struct VoronoiResult {
    /// Nearest seed (`src(v)` in the paper), `None` if unreachable from
    /// every seed.
    pub src: Vec<Option<Vertex>>,
    /// Distance to the nearest seed (`INF` if unreachable).
    pub dist: Vec<Distance>,
    /// Predecessor toward the nearest seed.
    pub pred: Vec<Option<Vertex>>,
}

/// Multi-source Dijkstra from every seed simultaneously: each vertex ends
/// up with its nearest seed, the distance to it, and a predecessor on the
/// shortest path — i.e. the Voronoi cells `N(s)` of §II. Ties between seeds
/// are broken toward the smaller seed id, matching the distributed kernel's
/// tie-breaking so results are comparable.
pub fn voronoi_cells(g: &CsrGraph, seeds: &[Vertex]) -> VoronoiResult {
    let n = g.num_vertices();
    let mut src: Vec<Option<Vertex>> = vec![None; n];
    let mut dist = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Distance, Vertex, Vertex)>> = BinaryHeap::new();
    for &s in seeds {
        dist[s as usize] = 0;
        src[s as usize] = Some(s);
        heap.push(Reverse((0, s, s)));
    }
    while let Some(Reverse((d, seed, u))) = heap.pop() {
        // Lazy deletion: skip entries that no longer match the state.
        if d != dist[u as usize] || src[u as usize] != Some(seed) {
            continue;
        }
        for (v, w) in g.edges(u) {
            let nd = d + w;
            let improves = nd < dist[v as usize]
                || (nd == dist[v as usize] && src[v as usize].is_none_or(|cur| seed < cur));
            if improves {
                dist[v as usize] = nd;
                src[v as usize] = Some(seed);
                pred[v as usize] = Some(u);
                heap.push(Reverse((nd, seed, v)));
            }
        }
    }
    // Seeds have no predecessor.
    for &s in seeds {
        pred[s as usize] = None;
    }
    VoronoiResult { src, dist, pred }
}

/// Reconstructs the path from `v` back to its cell's seed by following
/// predecessors; returns the edges `(a, b)` walked. Empty for a seed.
pub fn trace_to_seed(vr: &VoronoiResult, mut v: Vertex) -> Vec<(Vertex, Vertex)> {
    let mut edges = Vec::new();
    while let Some(p) = vr.pred[v as usize] {
        edges.push((p, v));
        v = p;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::builder::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 3, 1), (0, 2, 3), (2, 3, 1)]);
        b.build()
    }

    #[test]
    fn dijkstra_distances() {
        let g = diamond();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 3, 2]);
        assert_eq!(r.pred[3], Some(1));
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.pred[2], None);
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let g = diamond();
        let d = dijkstra(&g, 0);
        let b = bellman_ford(&g, 0);
        assert_eq!(d.dist, b.dist);
    }

    #[test]
    fn voronoi_two_seeds_split_path() {
        // 0 -1- 1 -1- 2 -1- 3 -1- 4; seeds 0 and 4.
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]);
        let g = b.build();
        let vr = voronoi_cells(&g, &[0, 4]);
        assert_eq!(vr.src[0], Some(0));
        assert_eq!(vr.src[1], Some(0));
        // Vertex 2 is equidistant; tie breaks to smaller seed id 0.
        assert_eq!(vr.src[2], Some(0));
        assert_eq!(vr.src[3], Some(4));
        assert_eq!(vr.dist, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn voronoi_distance_equals_min_dijkstra() {
        let g = stgraph::datasets::Dataset::Cts.generate_tiny(3);
        let seeds = [0u32, 50, 100, 200];
        let vr = voronoi_cells(&g, &seeds);
        let per_seed: Vec<_> = seeds.iter().map(|&s| dijkstra(&g, s)).collect();
        for v in g.vertices() {
            let best = per_seed.iter().map(|r| r.dist[v as usize]).min().unwrap();
            assert_eq!(vr.dist[v as usize], best, "vertex {v}");
        }
    }

    #[test]
    fn voronoi_pred_paths_lead_to_own_seed() {
        let g = stgraph::datasets::Dataset::Cts.generate_tiny(4);
        let seeds = [1u32, 17, 33];
        let vr = voronoi_cells(&g, &seeds);
        for v in g.vertices() {
            if vr.src[v as usize].is_none() {
                continue;
            }
            let mut cur = v;
            let mut hops = 0;
            while let Some(p) = vr.pred[cur as usize] {
                assert_eq!(
                    vr.src[p as usize], vr.src[cur as usize],
                    "pred chain crosses cells at {cur}"
                );
                cur = p;
                hops += 1;
                assert!(hops <= g.num_vertices(), "pred cycle at {v}");
            }
            assert_eq!(Some(cur), vr.src[v as usize], "chain from {v} ends at seed");
        }
    }

    #[test]
    fn trace_to_seed_returns_path_edges() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let g = b.build();
        let vr = voronoi_cells(&g, &[0]);
        let path = trace_to_seed(&vr, 3);
        assert_eq!(path, vec![(2, 3), (1, 2), (0, 1)]);
        assert!(trace_to_seed(&vr, 0).is_empty());
    }
}
