#![warn(missing_docs)]

//! # baselines — sequential comparator algorithms
//!
//! Everything the paper compares its distributed solver against (§V-G),
//! plus the shortest-path and MST kernels they are built from:
//!
//! - [`shortest_path`]: Dijkstra, Bellman–Ford, and multi-source Dijkstra
//!   (exact Voronoi cells — the sequential reference for the distributed
//!   kernel);
//! - [`delta_stepping`]: the Δ-stepping SSSP kernel the paper weighs
//!   against its asynchronous Bellman-Ford choice (§III);
//! - [`apsp`]: seed-pair all-pairs shortest paths (the expensive KMB Step 1
//!   that Table I compares against Voronoi cells);
//! - [`mst`]: Kruskal and Prim over auxiliary edge lists; [`dsu`];
//! - [`kmb`]: the KMB 2-approximation (Kou–Markowsky–Berman 1981);
//! - [`www`]: the WWW generalized-MST 2-approximation (Wu–Widmayer–Wong
//!   1986);
//! - [`takahashi`]: the Takahashi–Matsuyama shortest-path heuristic
//!   (1980), the original 2-approximation;
//! - [`mehlhorn`]: Mehlhorn's Voronoi-cell 2-approximation (1988);
//! - [`exact`]: Dreyfus–Wagner exact Steiner minimal trees (the suite's
//!   SCIP-Jack stand-in for measuring approximation quality);
//! - [`lower_bound`]: certified lower bounds on `D_min` for instances too
//!   large for the exact DP;
//! - [`improve`]: key-path local search that refines any 2-approximate
//!   tree toward the optimum.

pub mod apsp;
pub mod common;
pub mod delta_stepping;
pub mod exact;
pub mod improve;
pub mod kmb;
pub mod lower_bound;
pub mod mehlhorn;
pub mod shortest_path;
pub mod takahashi;
pub mod www;

pub use common::SteinerError;

pub use exact::{dreyfus_wagner, steiner_minimal_distance};
pub use improve::key_path_improve;
pub use kmb::kmb;
pub use lower_bound::steiner_lower_bound;
pub use mehlhorn::mehlhorn;
/// Re-export: union-find lives in the graph substrate crate.
pub use stgraph::dsu;
/// Re-export: MST kernels live in the graph substrate crate.
pub use stgraph::mst;
pub use takahashi::takahashi;
pub use www::www;

#[cfg(test)]
mod proptests;
