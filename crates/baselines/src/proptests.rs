//! Property-based tests: the approximation algorithms against the exact
//! solver and each other, on random connected weighted graphs.

use crate::exact::dreyfus_wagner;
use crate::kmb::kmb;
use crate::mehlhorn::mehlhorn;
use crate::shortest_path::{bellman_ford, dijkstra, voronoi_cells};
use crate::www::www;
use proptest::prelude::*;
use stgraph::builder::GraphBuilder;
use stgraph::csr::{CsrGraph, Vertex};
use stgraph::mst::{kruskal, prim, tree_weight, AuxEdge};

/// Strategy: a connected weighted graph (random spanning tree + extra
/// edges) with a seed subset.
fn arb_connected_instance(
    max_n: usize,
    max_extra: usize,
    max_seeds: usize,
) -> impl Strategy<Value = (CsrGraph, Vec<Vertex>)> {
    (3..max_n).prop_flat_map(move |n| {
        let tree_weights = proptest::collection::vec(1..50u64, n - 1);
        let tree_parents: Vec<_> = (1..n).map(|v| 0..v).collect();
        let extras =
            proptest::collection::vec((0..n as Vertex, 0..n as Vertex, 1..50u64), 0..max_extra);
        let num_seeds = 2..max_seeds.min(n);
        (tree_weights, tree_parents, extras, num_seeds).prop_flat_map(move |(tw, tp, extras, k)| {
            let mut b = GraphBuilder::new(n);
            for (v, (&w, &p)) in tw.iter().zip(tp.iter()).enumerate() {
                b.add_edge((v + 1) as Vertex, p as Vertex, w);
            }
            for (u, v, w) in extras {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            let g = b.build();
            proptest::collection::hash_set(0..n as Vertex, k).prop_map(move |seeds| {
                let mut seeds: Vec<Vertex> = seeds.into_iter().collect();
                seeds.sort_unstable();
                (g.clone(), seeds)
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn approximations_respect_bound(
        (g, seeds) in arb_connected_instance(14, 20, 6)
    ) {
        let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
        let bound = 2.0 * (1.0 - 1.0 / seeds.len() as f64) * opt as f64 + 1e-9;
        for (name, t) in [
            ("kmb", kmb(&g, &seeds).unwrap()),
            ("mehlhorn", mehlhorn(&g, &seeds).unwrap()),
            ("www", www(&g, &seeds).unwrap()),
        ] {
            prop_assert!(t.validate(&g).is_ok(), "{name}: {:?}", t.validate(&g));
            let d = t.total_distance();
            prop_assert!(d >= opt, "{name} beat the optimum");
            prop_assert!(d as f64 <= bound, "{name}: {d} > bound {bound} (opt {opt})");
        }
    }

    #[test]
    fn lower_bound_is_sound(
        (g, seeds) in arb_connected_instance(12, 15, 5)
    ) {
        let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
        let lb = crate::lower_bound::steiner_lower_bound(&g, &seeds).unwrap();
        prop_assert!(lb <= opt, "lower bound {lb} exceeds optimum {opt}");
    }

    #[test]
    fn mst_kernels_agree(
        n in 2usize..25,
        raw in proptest::collection::vec((0u32..25, 0u32..25, 1u64..100), 1..60)
    ) {
        let edges: Vec<AuxEdge> = raw
            .into_iter()
            .filter(|&(u, v, _)| u != v && (u as usize) < n && (v as usize) < n)
            .collect();
        let k = kruskal(n, &edges);
        let p = prim(n, &edges);
        prop_assert_eq!(k.len(), p.len());
        prop_assert_eq!(tree_weight(&edges, &k), tree_weight(&edges, &p));
    }

    #[test]
    fn bellman_ford_matches_dijkstra(
        (g, seeds) in arb_connected_instance(20, 25, 3)
    ) {
        let s = seeds[0];
        let d = dijkstra(&g, s);
        let b = bellman_ford(&g, s);
        prop_assert_eq!(d.dist, b.dist);
    }

    #[test]
    fn voronoi_assigns_nearest_seed(
        (g, seeds) in arb_connected_instance(20, 25, 5)
    ) {
        let vr = voronoi_cells(&g, &seeds);
        let per_seed: Vec<_> = seeds.iter().map(|&s| dijkstra(&g, s)).collect();
        for v in g.vertices() {
            let best = per_seed.iter().map(|r| r.dist[v as usize]).min().unwrap();
            prop_assert_eq!(vr.dist[v as usize], best);
            // The assigned seed achieves that distance.
            let si = seeds.iter().position(|&s| Some(s) == vr.src[v as usize]).unwrap();
            prop_assert_eq!(per_seed[si].dist[v as usize], best);
        }
    }

    #[test]
    fn www_and_mehlhorn_equal_weight(
        (g, seeds) in arb_connected_instance(16, 20, 6)
    ) {
        // Both compute an MST of G_1'; after identical finalization the
        // totals agree whenever tie-breaking picks paths of equal weight,
        // which our deterministic orderings guarantee at the MST level.
        let a = www(&g, &seeds).unwrap();
        let b = mehlhorn(&g, &seeds).unwrap();
        // MST weight of G_1' equal => expanded subgraphs have equal path
        // totals; final re-MST can only shave equally or differently by
        // ties, so allow a small relative gap.
        let (da, db) = (a.total_distance() as f64, b.total_distance() as f64);
        prop_assert!((da - db).abs() / da.max(db).max(1.0) < 0.15,
            "www {da} vs mehlhorn {db}");
    }
}
