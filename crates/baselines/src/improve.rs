//! Key-path local search: iterative improvement of a 2-approximate tree.
//!
//! The paper's related-work section notes that algorithms beating ratio 2
//! "iteratively refine a base-solution which is typically computed using a
//! 2-approximation algorithm" [41]. This module implements the classic
//! refinement move, *key-path exchange*: a key path (maximal tree path
//! whose interior vertices are non-terminals of tree-degree 2) is removed,
//! splitting the tree in two; if a shorter path reconnects the two halves
//! through the background graph, it replaces the key path. Repeats to a
//! local optimum.
//!
//! The result never gets worse, keeps the 2-approximation guarantee, and
//! in practice closes part of the gap to the optimum (measured against
//! Dreyfus–Wagner in the tests and the quality harness).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use stgraph::csr::{CsrGraph, Distance, Vertex, Weight, INF};
use stgraph::dsu::Dsu;
use stgraph::steiner_tree::SteinerTree;

/// Outcome of one [`key_path_improve`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Improvement {
    /// The improved (or unchanged) tree.
    pub tree: SteinerTree,
    /// Number of key-path exchanges applied.
    pub exchanges: usize,
    /// Total distance saved relative to the input tree.
    pub saved: Distance,
}

/// Improves `tree` by key-path exchanges until a local optimum (or
/// `max_rounds` full scans). The input must be a valid Steiner tree of
/// `g`; the output is too, with `<=` total distance.
pub fn key_path_improve(g: &CsrGraph, tree: &SteinerTree, max_rounds: usize) -> Improvement {
    let original = tree.total_distance();
    let seed_set: HashSet<Vertex> = tree.seeds.iter().copied().collect();
    let mut edges: Vec<(Vertex, Vertex, Weight)> = tree.edges.clone();
    let mut exchanges = 0;

    for _ in 0..max_rounds {
        let mut improved = false;
        let paths = key_paths(&edges, &seed_set);
        for path in paths {
            if try_exchange(g, &mut edges, &path) {
                exchanges += 1;
                improved = true;
                // Edge indices are stale after an exchange; rescan.
                break;
            }
        }
        if !improved {
            break;
        }
    }
    let tree = SteinerTree::new(tree.seeds.iter().copied(), edges);
    Improvement {
        saved: original - tree.total_distance(),
        tree,
        exchanges,
    }
}

/// A key path: its edge indices in the current edge list, its vertex
/// sequence (endpoints are key vertices), and its total weight.
struct KeyPath {
    edge_indices: Vec<usize>,
    vertices: Vec<Vertex>,
    weight: Distance,
}

/// Decomposes the tree into key paths.
fn key_paths(edges: &[(Vertex, Vertex, Weight)], seeds: &HashSet<Vertex>) -> Vec<KeyPath> {
    let mut adj: HashMap<Vertex, Vec<(Vertex, usize)>> = HashMap::new();
    for (i, &(u, v, _)) in edges.iter().enumerate() {
        adj.entry(u).or_default().push((v, i));
        adj.entry(v).or_default().push((u, i));
    }
    let is_key =
        |v: Vertex| -> bool { seeds.contains(&v) || adj.get(&v).map_or(0, |a| a.len()) != 2 };

    let mut used_edge = vec![false; edges.len()];
    let mut out = Vec::new();
    let mut keys: Vec<Vertex> = adj.keys().copied().filter(|&v| is_key(v)).collect();
    keys.sort_unstable();
    for start in keys {
        for &(mut next, mut ei) in &adj[&start] {
            if used_edge[ei] {
                continue;
            }
            // Walk the degree-2 non-key chain to the far key vertex.
            let mut vertices = vec![start];
            let mut edge_indices = Vec::new();
            let mut weight: Distance = 0;
            let mut prev = start;
            loop {
                used_edge[ei] = true;
                edge_indices.push(ei);
                weight += edges[ei].2;
                vertices.push(next);
                if is_key(next) {
                    break;
                }
                let &(n2, e2) = adj[&next]
                    .iter()
                    .find(|&&(n, _)| n != prev)
                    .expect("degree-2 interior has a far neighbor");
                prev = next;
                next = n2;
                ei = e2;
            }
            out.push(KeyPath {
                edge_indices,
                vertices,
                weight,
            });
        }
    }
    out
}

/// Attempts to replace `path` with a strictly shorter reconnection.
/// Returns whether an exchange happened (mutating `edges`).
fn try_exchange(g: &CsrGraph, edges: &mut Vec<(Vertex, Vertex, Weight)>, path: &KeyPath) -> bool {
    // Split: components of the tree without the path's edges.
    let mut ids: HashMap<Vertex, u32> = HashMap::new();
    for &(u, v, _) in edges.iter() {
        let next = ids.len() as u32;
        ids.entry(u).or_insert(next);
        let next = ids.len() as u32;
        ids.entry(v).or_insert(next);
    }
    let removed: HashSet<usize> = path.edge_indices.iter().copied().collect();
    let mut dsu = Dsu::new(ids.len());
    for (i, &(u, v, _)) in edges.iter().enumerate() {
        if !removed.contains(&i) {
            dsu.union(ids[&u], ids[&v]);
        }
    }
    let a_end = *path.vertices.first().expect("non-empty path");
    let b_end = *path.vertices.last().expect("non-empty path");
    let a_root = dsu.find(ids[&a_end]);
    // Interior vertices belong to neither side (their edges were removed).
    let interior: HashSet<Vertex> = path.vertices[1..path.vertices.len() - 1]
        .iter()
        .copied()
        .collect();
    let side_a: HashSet<Vertex> = ids
        .keys()
        .copied()
        .filter(|v| !interior.contains(v) && dsu.find(ids[v]) == a_root)
        .collect();
    let side_b: HashSet<Vertex> = ids
        .keys()
        .copied()
        .filter(|v| !interior.contains(v) && !side_a.contains(v))
        .collect();
    debug_assert!(side_a.contains(&a_end) && side_b.contains(&b_end));

    // Multi-source Dijkstra from side A through the whole graph, stopping
    // early once the best reachable B vertex cannot improve on the path.
    let n = g.num_vertices();
    let mut dist: Vec<Distance> = vec![INF; n];
    let mut pred: Vec<Option<Vertex>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Distance, Vertex)>> = BinaryHeap::new();
    for &v in &side_a {
        dist[v as usize] = 0;
        heap.push(Reverse((0, v)));
    }
    let mut best: Option<(Distance, Vertex)> = None;
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] || d >= path.weight {
            continue;
        }
        if side_b.contains(&u) {
            best = Some((d, u));
            break; // First settled B vertex is the closest.
        }
        for (v, w) in g.edges(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = Some(u);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    let Some((new_weight, hit)) = best else {
        return false;
    };
    if new_weight >= path.weight {
        return false;
    }

    // Apply: drop the key path's edges, add the replacement path.
    let mut keep: Vec<(Vertex, Vertex, Weight)> = edges
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, &e)| e)
        .collect();
    let mut cur = hit;
    while let Some(p) = pred[cur as usize] {
        let w = g.edge_weight(p, cur).expect("path edge exists");
        keep.push((p.min(cur), p.max(cur), w));
        cur = p;
    }
    *edges = keep;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::dreyfus_wagner;
    use crate::takahashi::takahashi;
    use stgraph::builder::GraphBuilder;
    use stgraph::datasets::Dataset;

    #[test]
    fn replaces_detour_with_shortcut() {
        // A bad base tree routes 0 -> 2 through the weight-10 detour; one
        // key-path exchange finds the weight-2 shortcut through vertex 3.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 5), (1, 2, 5), (0, 3, 1), (3, 2, 1)]);
        let g = b.build();
        let base = SteinerTree::new([0, 2], [(0, 1, 5), (1, 2, 5)]);
        let improved = key_path_improve(&g, &base, 10);
        assert_eq!(improved.tree.total_distance(), 2);
        assert_eq!(improved.saved, 8);
        assert_eq!(improved.exchanges, 1);
        assert!(improved.tree.validate(&g).is_ok());
    }

    #[test]
    fn hub_star_is_a_known_local_optimum() {
        // Takahashi pays 8 on the hub-star; every single key-path exchange
        // is weight-neutral (4 vs 4), so local search legitimately stays
        // at 8 — the textbook example of exchange's locality.
        let mut b = GraphBuilder::new(4);
        b.extend_edges([
            (0, 1, 4),
            (1, 2, 4),
            (0, 2, 4),
            (0, 3, 2),
            (1, 3, 2),
            (2, 3, 2),
        ]);
        let g = b.build();
        let base = takahashi(&g, &[0, 1, 2]).unwrap();
        assert_eq!(base.total_distance(), 8);
        let improved = key_path_improve(&g, &base, 10);
        assert_eq!(improved.tree.total_distance(), 8);
        assert_eq!(improved.exchanges, 0);
    }

    #[test]
    fn never_worsens_and_stays_valid() {
        for seed in 0..8u64 {
            let g = Dataset::Cts.generate_tiny(seed);
            let cc = stgraph::traversal::connected_components(&g);
            let verts = cc.largest_component_vertices();
            let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 7).copied().collect();
            let base = crate::mehlhorn(&g, &seeds).unwrap();
            let improved = key_path_improve(&g, &base, 20);
            assert!(improved.tree.validate(&g).is_ok(), "instance {seed}");
            assert!(
                improved.tree.total_distance() <= base.total_distance(),
                "instance {seed} got worse"
            );
            assert_eq!(
                improved.saved,
                base.total_distance() - improved.tree.total_distance()
            );
        }
    }

    #[test]
    fn local_optimum_is_at_least_as_good_and_bounded_by_exact() {
        for seed in 20..26u64 {
            let g = Dataset::Cts.generate_tiny(seed);
            let cc = stgraph::traversal::connected_components(&g);
            let verts = cc.largest_component_vertices();
            let seeds: Vec<u32> = verts.iter().step_by(verts.len() / 5).copied().collect();
            let base = takahashi(&g, &seeds).unwrap();
            let improved = key_path_improve(&g, &base, 30);
            let opt = dreyfus_wagner(&g, &seeds).unwrap().total_distance();
            assert!(improved.tree.total_distance() >= opt, "instance {seed}");
        }
    }

    #[test]
    fn already_optimal_tree_is_unchanged() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1, 1), (1, 2, 1)]);
        let g = b.build();
        let t = SteinerTree::new([0, 2], [(0, 1, 1), (1, 2, 1)]);
        let improved = key_path_improve(&g, &t, 5);
        assert_eq!(improved.exchanges, 0);
        assert_eq!(improved.tree, t);
    }

    #[test]
    fn single_edge_tree() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 7);
        let g = b.build();
        let t = SteinerTree::new([0, 1], [(0, 1, 7)]);
        let improved = key_path_improve(&g, &t, 5);
        assert_eq!(improved.tree.total_distance(), 7);
    }
}
