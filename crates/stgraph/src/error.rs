//! Errors shared by every Steiner tree solver in the suite.

use crate::csr::Vertex;

/// Why a Steiner tree could not be computed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SteinerError {
    /// Fewer than one seed was supplied.
    NoSeeds,
    /// Fewer than two distinct seeds were supplied to a solver that
    /// needs a nontrivial terminal set.
    TooFewSeeds {
        /// Number of distinct seeds after deduplication.
        got: usize,
    },
    /// Two seeds are in different connected components.
    SeedsDisconnected(Vertex, Vertex),
    /// A seed id is outside the graph's vertex range.
    SeedOutOfRange(Vertex),
    /// The exact solver's state space `2^|S| * |V|` exceeds its budget.
    ExactTooLarge {
        /// Number of DP states the instance would need.
        states: u128,
    },
    /// The solve's wall-clock deadline expired before the tree was
    /// assembled; the ranks were cooperatively aborted and a flight dump
    /// holds the partial progress record.
    DeadlineExceeded {
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
    },
    /// A rank crashed and the supervisor could not restore: either no
    /// complete phase checkpoint existed (checkpointing disabled, or the
    /// crash predates the first barrier) or the restore budget ran out.
    Unrecoverable {
        /// Restores performed before giving up.
        restores: u64,
    },
}

impl std::fmt::Display for SteinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteinerError::NoSeeds => write!(f, "no seed vertices supplied"),
            SteinerError::TooFewSeeds { got } => {
                write!(f, "need at least 2 distinct seed vertices, got {got}")
            }
            SteinerError::SeedsDisconnected(s, t) => {
                write!(f, "seeds {s} and {t} are not connected in the graph")
            }
            SteinerError::SeedOutOfRange(s) => write!(f, "seed {s} out of vertex range"),
            SteinerError::ExactTooLarge { states } => write!(
                f,
                "exact Dreyfus-Wagner needs {states} DP states, over budget"
            ),
            SteinerError::DeadlineExceeded { deadline_ms } => {
                write!(f, "solve deadline of {deadline_ms} ms exceeded")
            }
            SteinerError::Unrecoverable { restores } => write!(
                f,
                "rank failure unrecoverable after {restores} restore(s): \
                 no usable phase checkpoint"
            ),
        }
    }
}

impl std::error::Error for SteinerError {}
