//! Edge-weight assignment.
//!
//! The paper assigns every dataset uniform random integer weights from a
//! per-dataset inclusive range (Table III), and Fig 7 sweeps the range from
//! `[1, 100]` to `[1, 100K]` on a fixed topology. [`WeightRange`] models
//! exactly that, and [`reweight`] re-draws the weights of an existing graph
//! without changing its topology (the Fig 7 experiment).

use crate::csr::{CsrGraph, Weight};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// An inclusive uniform integer weight range `[lo, hi]`, `1 <= lo <= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightRange {
    lo: Weight,
    hi: Weight,
}

impl WeightRange {
    /// A new range; panics unless `1 <= lo <= hi`.
    pub fn new(lo: Weight, hi: Weight) -> Self {
        assert!(lo >= 1 && lo <= hi, "invalid weight range [{lo},{hi}]");
        WeightRange { lo, hi }
    }

    /// The degenerate range `[1, 1]` (unit weights).
    pub fn unit() -> Self {
        WeightRange { lo: 1, hi: 1 }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> Weight {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> Weight {
        self.hi
    }

    /// Draws one weight uniformly from the range.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Weight {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Rebuilds `g` with fresh uniform weights from `range`, preserving the
/// topology exactly. Both arcs of each undirected edge receive the same new
/// weight. Used by the Fig 7 edge-weight-distribution experiment.
pub fn reweight(g: &CsrGraph, range: WeightRange, rng: &mut ChaCha8Rng) -> CsrGraph {
    let mut b = crate::builder::GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v, _) in g.undirected_edges() {
        b.add_edge(u, v, range.sample(rng));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn sample_stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let r = WeightRange::new(3, 12);
        for _ in 0..1000 {
            let w = r.sample(&mut rng);
            assert!((3..=12).contains(&w));
        }
    }

    #[test]
    fn unit_range_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let r = WeightRange::unit();
        assert_eq!(r.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_lo() {
        WeightRange::new(0, 5);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted() {
        WeightRange::new(6, 5);
    }

    #[test]
    fn reweight_preserves_topology() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 100), (1, 2, 100), (2, 3, 100), (0, 3, 100)]);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g2 = reweight(&g, WeightRange::new(1, 5), &mut rng);
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v, _) in g.undirected_edges() {
            let w = g2.edge_weight(u, v).expect("edge must survive reweight");
            assert!((1..=5).contains(&w));
            assert_eq!(g2.edge_weight(v, u), Some(w), "weights stay symmetric");
        }
    }

    #[test]
    fn reweight_is_deterministic() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1, 9), (1, 2, 9)]);
        let g = b.build();
        let g1 = reweight(
            &g,
            WeightRange::new(1, 1000),
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        let g2 = reweight(
            &g,
            WeightRange::new(1, 1000),
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        for (u, v, w) in g1.undirected_edges() {
            assert_eq!(g2.edge_weight(u, v), Some(w));
        }
    }
}

/// A parametric edge-weight distribution. The paper's Fig 7 varies the
/// *range* of a uniform distribution; real knowledge networks (§I: weights
/// "often a function of the metadata") produce other shapes, so the suite
/// also offers log-uniform (heavy-tailed toward small weights) and bimodal
/// (strong ties vs weak ties) families for the extended Fig 7 sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightDistribution {
    /// Uniform over an inclusive range (the paper's setting).
    Uniform(WeightRange),
    /// `exp(uniform(ln lo, ln hi))` — most edges near the low end.
    LogUniform(WeightRange),
    /// Strong ties from `low` with probability `1 - weak_fraction`, weak
    /// ties from `high` otherwise.
    Bimodal {
        /// Range of strong (cheap) ties.
        low: WeightRange,
        /// Range of weak (expensive) ties.
        high: WeightRange,
        /// Probability of drawing from `high`, in `[0, 1]`.
        weak_fraction: f64,
    },
}

impl WeightDistribution {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            WeightDistribution::Uniform(_) => "uniform",
            WeightDistribution::LogUniform(_) => "log-uniform",
            WeightDistribution::Bimodal { .. } => "bimodal",
        }
    }

    /// Draws one weight.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Weight {
        match *self {
            WeightDistribution::Uniform(r) => r.sample(rng),
            WeightDistribution::LogUniform(r) => {
                let (lo, hi) = (r.lo() as f64, r.hi() as f64);
                let x = rng.gen_range(lo.ln()..=hi.ln()).exp();
                (x.round() as Weight).clamp(r.lo(), r.hi())
            }
            WeightDistribution::Bimodal {
                low,
                high,
                weak_fraction,
            } => {
                if rng.gen_bool(weak_fraction.clamp(0.0, 1.0)) {
                    high.sample(rng)
                } else {
                    low.sample(rng)
                }
            }
        }
    }
}

/// Rebuilds `g` with fresh weights drawn from `dist`, preserving topology
/// (the distribution-shape variant of [`reweight`]).
pub fn reweight_with(g: &CsrGraph, dist: WeightDistribution, rng: &mut ChaCha8Rng) -> CsrGraph {
    let mut b = crate::builder::GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v, _) in g.undirected_edges() {
        b.add_edge(u, v, dist.sample(rng));
    }
    b.build()
}

#[cfg(test)]
mod distribution_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn all_distributions_stay_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = WeightRange::new(2, 5000);
        for dist in [
            WeightDistribution::Uniform(r),
            WeightDistribution::LogUniform(r),
            WeightDistribution::Bimodal {
                low: WeightRange::new(2, 10),
                high: WeightRange::new(1000, 5000),
                weak_fraction: 0.3,
            },
        ] {
            for _ in 0..2000 {
                let w = dist.sample(&mut rng);
                assert!((2..=5000).contains(&w), "{}: {w}", dist.name());
            }
        }
    }

    #[test]
    fn log_uniform_skews_low() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let r = WeightRange::new(1, 10_000);
        let uni = WeightDistribution::Uniform(r);
        let log = WeightDistribution::LogUniform(r);
        let mean = |d: &WeightDistribution, rng: &mut ChaCha8Rng| {
            (0..5000).map(|_| d.sample(rng)).sum::<u64>() as f64 / 5000.0
        };
        assert!(mean(&log, &mut rng) < mean(&uni, &mut rng) / 2.0);
    }

    #[test]
    fn reweight_with_preserves_topology() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 7), (1, 2, 7), (2, 3, 7)]);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g2 = reweight_with(
            &g,
            WeightDistribution::LogUniform(WeightRange::new(1, 100)),
            &mut rng,
        );
        assert_eq!(
            g.undirected_edges()
                .map(|(u, v, _)| (u, v))
                .collect::<Vec<_>>(),
            g2.undirected_edges()
                .map(|(u, v, _)| (u, v))
                .collect::<Vec<_>>()
        );
    }
}
