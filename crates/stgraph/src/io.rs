//! Graph serialization: text edge lists and a compact binary format.
//!
//! The text format is one `u v w` triple per line (whitespace separated,
//! `#` comments allowed) — interoperable with common edge-list corpora.
//! The binary format is a little-endian dump of the CSR arrays behind a
//! magic header, analogous in spirit to the "HavoqGT binary graph format"
//! whose sizes Table III reports.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vertex, Weight};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"STGRAPH1";

/// Writes `g` as a text edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut out: W) -> io::Result<()> {
    writeln!(out, "# vertices {}", g.num_vertices())?;
    for (u, v, w) in g.undirected_edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    Ok(())
}

/// Reads a text edge list. The vertex count is taken from a
/// `# vertices N` header if present, otherwise `max id + 1`.
pub fn read_edge_list<R: Read>(input: R) -> io::Result<CsrGraph> {
    let reader = BufReader::new(input);
    let mut edges: Vec<(Vertex, Vertex, Weight)> = Vec::new();
    let mut declared_n: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("vertices") {
                if let Some(n) = it.next().and_then(|s| s.parse().ok()) {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse()
                .map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())? as Vertex;
        let v = parse(it.next())? as Vertex;
        let w = match it.next() {
            Some(tok) => tok.parse().map_err(|_| bad_line(lineno))?,
            None => 1,
        };
        edges.push((u, v, w));
    }
    let max_id = edges
        .iter()
        .map(|&(u, v, _)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    let n = declared_n.unwrap_or(max_id).max(max_id);
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend_edges(edges);
    Ok(b.build())
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge list at line {}", lineno + 1),
    )
}

/// Writes `g` in the compact binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    let n = g.num_vertices() as u64;
    let m = g.num_arcs() as u64;
    out.write_all(&n.to_le_bytes())?;
    out.write_all(&m.to_le_bytes())?;
    let mut buf = BufWriter::new(out);
    for v in g.vertices() {
        for (t, w) in g.edges(v) {
            buf.write_all(&(v as u64).to_le_bytes())?;
            buf.write_all(&(t as u64).to_le_bytes())?;
            buf.write_all(&w.to_le_bytes())?;
        }
    }
    buf.flush()
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<R: Read>(mut input: R) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not an STGRAPH1 file",
        ));
    }
    let mut word = [0u8; 8];
    input.read_exact(&mut word)?;
    let n = u64::from_le_bytes(word) as usize;
    input.read_exact(&mut word)?;
    let m = u64::from_le_bytes(word) as usize;
    let mut reader = BufReader::new(input);
    let mut b = GraphBuilder::with_capacity(n, m / 2);
    for _ in 0..m {
        let mut rec = [0u8; 24];
        reader.read_exact(&mut rec)?;
        let u = u64::from_le_bytes(rec[0..8].try_into().unwrap()) as Vertex;
        let v = u64::from_le_bytes(rec[8..16].try_into().unwrap()) as Vertex;
        let w = u64::from_le_bytes(rec[16..24].try_into().unwrap());
        // Arcs appear in both directions; add each undirected edge once.
        if u < v {
            b.add_edge(u, v, w);
        }
    }
    Ok(b.build())
}

/// Convenience: writes the binary format to `path`.
pub fn save_binary(g: &CsrGraph, path: &Path) -> io::Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Convenience: reads the binary format from `path`.
pub fn load_binary(path: &Path) -> io::Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 3), (1, 2, 5), (2, 3, 7), (3, 4, 2), (0, 4, 11)]);
        b.build()
    }

    fn graphs_equal(a: &CsrGraph, b: &CsrGraph) -> bool {
        a.num_vertices() == b.num_vertices()
            && a.undirected_edges().collect::<Vec<_>>() == b.undirected_edges().collect::<Vec<_>>()
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert!(graphs_equal(&g, &g2));
    }

    #[test]
    fn edge_list_default_weight_is_one() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn edge_list_respects_declared_vertices() {
        let g = read_edge_list("# vertices 10\n0 1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x 2\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert!(graphs_equal(&g, &g2));
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_binary(&b"NOTAGRPH........"[..]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = read_edge_list("# hello\n\n0 1 4\n# more\n1 2 6\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
