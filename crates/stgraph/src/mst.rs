//! Minimum spanning tree kernels over explicit edge lists.
//!
//! These operate on small auxiliary graphs (the distance graphs `G_1` /
//! `G_1'` and induced subgraphs of the KMB pipeline), which are naturally
//! edge lists rather than CSR structures. Kruskal is the workhorse; Prim
//! matches the paper's choice for the distributed solver's Step 3 ("our
//! current implementation uses Boost's implementation of Prim's
//! algorithm") and cross-checks Kruskal in tests.

use crate::dsu::Dsu;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A weighted edge of an auxiliary graph, `(u, v, w)` over ids `0..n`.
pub type AuxEdge = (u32, u32, u64);

/// Kruskal's MST over `n` vertices. Returns the indices (into `edges`) of
/// the chosen edges, in ascending weight order with ties broken by the
/// edge's `(w, u, v)` tuple for determinism. If the graph is disconnected,
/// a minimum spanning forest is returned.
pub fn kruskal(n: usize, edges: &[AuxEdge]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&i| {
        let (u, v, w) = edges[i];
        (w, u, v)
    });
    let mut dsu = Dsu::new(n);
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    for i in order {
        let (u, v, _) = edges[i];
        if dsu.union(u, v) {
            chosen.push(i);
            if chosen.len() + 1 == n {
                break;
            }
        }
    }
    chosen
}

/// Prim's MST over `n` vertices with a binary heap. Same output contract
/// as [`kruskal`]; starts from vertex 0 and restarts in every component,
/// so disconnected inputs yield a spanning forest.
pub fn prim(n: usize, edges: &[AuxEdge]) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    // Adjacency: vertex -> (weight, other endpoint, edge index).
    let mut adj: Vec<Vec<(u64, u32, usize)>> = vec![Vec::new(); n];
    for (i, &(u, v, w)) in edges.iter().enumerate() {
        adj[u as usize].push((w, v, i));
        adj[v as usize].push((w, u, i));
    }
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::with_capacity(n - 1);
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32, usize)>> = BinaryHeap::new();
    for start in 0..n as u32 {
        if in_tree[start as usize] {
            continue;
        }
        in_tree[start as usize] = true;
        for &(w, v, i) in &adj[start as usize] {
            heap.push(Reverse((w, start.min(v), start.max(v), i)));
        }
        while let Some(Reverse((_, _, _, i))) = heap.pop() {
            let (u, v, _) = edges[i];
            let next = if in_tree[u as usize] && !in_tree[v as usize] {
                v
            } else if in_tree[v as usize] && !in_tree[u as usize] {
                u
            } else {
                continue;
            };
            in_tree[next as usize] = true;
            chosen.push(i);
            for &(w, t, j) in &adj[next as usize] {
                if !in_tree[t as usize] {
                    heap.push(Reverse((w, next.min(t), next.max(t), j)));
                }
            }
        }
    }
    chosen
}

/// Total weight of the edges selected by an MST routine.
pub fn tree_weight(edges: &[AuxEdge], chosen: &[usize]) -> u64 {
    chosen.iter().map(|&i| edges[i].2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kruskal_triangle() {
        let edges = vec![(0, 1, 1), (1, 2, 2), (0, 2, 3)];
        let chosen = kruskal(3, &edges);
        assert_eq!(tree_weight(&edges, &chosen), 3);
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn prim_triangle() {
        let edges = vec![(0, 1, 1), (1, 2, 2), (0, 2, 3)];
        let chosen = prim(3, &edges);
        assert_eq!(tree_weight(&edges, &chosen), 3);
    }

    #[test]
    fn forest_on_disconnected_input() {
        let edges = vec![(0, 1, 5), (2, 3, 7)];
        let k = kruskal(4, &edges);
        let p = prim(4, &edges);
        assert_eq!(k.len(), 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_graph() {
        assert!(kruskal(3, &[]).is_empty());
        assert!(prim(3, &[]).is_empty());
        assert!(prim(0, &[]).is_empty());
    }

    #[test]
    fn prim_matches_kruskal_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(2..30usize);
            let m = rng.gen_range(1..80usize);
            let edges: Vec<AuxEdge> = (0..m)
                .map(|_| {
                    (
                        rng.gen_range(0..n as u32),
                        rng.gen_range(0..n as u32),
                        rng.gen_range(1..100u64),
                    )
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let k = kruskal(n, &edges);
            let p = prim(n, &edges);
            assert_eq!(
                tree_weight(&edges, &k),
                tree_weight(&edges, &p),
                "n={n} edges={edges:?}"
            );
            assert_eq!(k.len(), p.len());
        }
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let edges = vec![(0, 1, 10), (0, 1, 2), (0, 1, 5)];
        let k = kruskal(2, &edges);
        assert_eq!(k, vec![1]);
        let p = prim(2, &edges);
        assert_eq!(tree_weight(&edges, &p), 2);
    }
}
