//! Disjoint-set union (union–find) with path halving and union by size.

/// Union–find over `0..n`.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut d = Dsu::new(5);
        assert_eq!(d.num_components(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
        assert_eq!(d.num_components(), 3);
    }

    #[test]
    fn large_chain() {
        let mut d = Dsu::new(1000);
        for i in 0..999 {
            d.union(i, i + 1);
        }
        assert_eq!(d.num_components(), 1);
        assert!(d.same(0, 999));
    }
}
