#![warn(missing_docs)]

//! # stgraph — weighted graph substrate
//!
//! The graph layer underneath the distributed Steiner tree suite. It provides:
//!
//! - [`CsrGraph`]: an immutable, cache-friendly compressed-sparse-row graph
//!   with positive integer edge weights (the paper's `d : E -> Z+ \ 0`),
//! - [`GraphBuilder`]: edge-list ingestion with symmetrization and
//!   min-weight deduplication,
//! - [`generators`]: synthetic graph families (RMAT, Barabási–Albert,
//!   Erdős–Rényi, grids, paths, stars, complete graphs) used to build
//!   scaled-down analogues of the paper's eight real-world datasets,
//! - [`partition`]: block partitioning with owner maps and high-degree
//!   vertex delegates (HavoqGT-style), used by the simulated runtime,
//! - [`traversal`]: BFS levels and connected components (seed selection and
//!   dataset preparation),
//! - [`io`]: text edge-list and compact binary formats,
//! - [`datasets`]: the registry of paper-graph analogues used by every
//!   experiment harness.
//!
//! All randomness is driven by caller-provided seeds through ChaCha RNGs so
//! that every generated graph is bit-for-bit reproducible.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dsu;
pub mod error;
pub mod generators;
pub mod io;
pub mod json;
pub mod mst;
pub mod partition;
pub mod stats;
pub mod steiner_tree;
pub mod transform;
pub mod traversal;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, Distance, Vertex, Weight, INF};
pub use error::SteinerError;
pub use partition::BlockPartition;
pub use steiner_tree::SteinerTree;

#[cfg(test)]
mod proptests;
