//! Synthetic graph generators.
//!
//! Every generator is deterministic given its RNG seed: the experiment
//! harnesses use these to build scaled-down analogues of the paper's
//! real-world datasets (see [`crate::datasets`]). Topology and edge weights
//! are generated separately — generators yield unweighted edge lists, and
//! [`crate::weights`] assigns weights from the dataset's range.

mod ba;
mod er;
mod regular;
mod rmat;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use regular::{complete, cycle, grid2d, path, star};
pub use rmat::{rmat, RmatParams};

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vertex};
use crate::weights::WeightRange;
use rand_chacha::ChaCha8Rng;

/// Assembles a weighted, symmetric [`CsrGraph`] from an unweighted edge
/// list, drawing weights uniformly from `range` using `rng`.
pub fn weighted_from_edges(
    n: usize,
    edges: impl IntoIterator<Item = (Vertex, Vertex)>,
    range: WeightRange,
    rng: &mut ChaCha8Rng,
) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        if u != v {
            b.add_edge(u, v, range.sample(rng));
        }
    }
    b.build()
}
