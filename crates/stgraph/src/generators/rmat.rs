//! RMAT (recursive matrix) scale-free graph generator.
//!
//! RMAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)`; skew in these probabilities yields the
//! heavy-tailed degree distributions characteristic of web and social
//! graphs — the dominant structural property of the paper's datasets.

use crate::csr::Vertex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// RMAT quadrant probabilities. Must sum to (approximately) 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "rich get richer" corner).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// The Graph500 reference parameters — strongly skewed, matching web
    /// graphs like the paper's WDC/ClueWeb/UKWeb.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Milder skew, closer to social graphs (Friendster/LiveJournal).
    pub fn social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }

    /// Uniform quadrants — degenerates to Erdős–Rényi-like structure.
    pub fn uniform() -> Self {
        RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "RMAT probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "RMAT probabilities must be non-negative"
        );
    }
}

/// Generates `num_edges` undirected RMAT edge samples over `2^scale`
/// vertices. Duplicates and self-loops may appear in the output; the
/// [`crate::GraphBuilder`] removes them, so the built graph typically has
/// slightly fewer than `num_edges` edges.
pub fn rmat(
    scale: u32,
    num_edges: usize,
    params: RmatParams,
    rng: &mut ChaCha8Rng,
) -> Vec<(Vertex, Vertex)> {
    params.validate();
    assert!(scale < 31, "scale {scale} exceeds 32-bit vertex id space");
    let mut edges = Vec::with_capacity(num_edges);
    let ab = params.a + params.b;
    let a_norm = params.a / ab;
    let c_norm = params.c / (params.c + params.d);
    for _ in 0..num_edges {
        let mut u: Vertex = 0;
        let mut v: Vertex = 0;
        for bit in (0..scale).rev() {
            // Add per-level noise so RMAT does not produce a perfectly
            // self-similar (and thus artificially regular) graph.
            let go_down: bool = rng.gen_bool(ab.clamp(0.0, 1.0));
            let (row_one, col_one) = if go_down {
                (false, !rng.gen_bool(a_norm.clamp(0.0, 1.0)))
            } else {
                (true, !rng.gen_bool(c_norm.clamp(0.0, 1.0)))
            };
            if row_one {
                u |= 1 << bit;
            }
            if col_one {
                v |= 1 << bit;
            }
        }
        edges.push((u, v));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::weighted_from_edges;
    use crate::weights::WeightRange;
    use rand::SeedableRng;

    #[test]
    fn vertices_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let edges = rmat(8, 2000, RmatParams::graph500(), &mut rng);
        assert_eq!(edges.len(), 2000);
        for (u, v) in edges {
            assert!(u < 256 && v < 256);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let e1 = rmat(
            6,
            500,
            RmatParams::social(),
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let e2 = rmat(
            6,
            500,
            RmatParams::social(),
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        assert_eq!(e1, e2);
    }

    #[test]
    fn skewed_params_produce_skewed_degrees() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let edges = rmat(10, 8192, RmatParams::graph500(), &mut rng);
        let g = weighted_from_edges(1024, edges, WeightRange::unit(), &mut rng);
        // A heavy-tailed graph has max degree far above the average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        rmat(
            4,
            10,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            &mut rng,
        );
    }
}
