//! Erdős–Rényi G(n, m) random graph generator.

use crate::csr::Vertex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Samples `num_edges` uniform random vertex pairs over `n` vertices.
/// Duplicates and self-loops may appear; [`crate::GraphBuilder`] removes
/// them at build time (so treat `num_edges` as a target, not an exact count).
pub fn erdos_renyi(n: usize, num_edges: usize, rng: &mut ChaCha8Rng) -> Vec<(Vertex, Vertex)> {
    assert!(n >= 2, "need at least two vertices");
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..n) as Vertex;
        let v = rng.gen_range(0..n) as Vertex;
        edges.push((u, v));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn in_range_and_counted() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let edges = erdos_renyi(64, 500, &mut rng);
        assert_eq!(edges.len(), 500);
        assert!(edges.iter().all(|&(u, v)| u < 64 && v < 64));
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(32, 100, &mut ChaCha8Rng::seed_from_u64(4));
        let b = erdos_renyi(32, 100, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
