//! Deterministic structured graphs: paths, cycles, stars, grids, cliques.
//!
//! These small regular families are the backbone of the unit and property
//! tests — their Steiner minimal trees are known in closed form.

use crate::csr::Vertex;

/// Path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Vec<(Vertex, Vertex)> {
    (0..n.saturating_sub(1))
        .map(|i| (i as Vertex, (i + 1) as Vertex))
        .collect()
}

/// Cycle over `n >= 3` vertices.
pub fn cycle(n: usize) -> Vec<(Vertex, Vertex)> {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut e = path(n);
    e.push(((n - 1) as Vertex, 0));
    e
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> Vec<(Vertex, Vertex)> {
    (1..n).map(|i| (0, i as Vertex)).collect()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Vec<(Vertex, Vertex)> {
    let mut e = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            e.push((u as Vertex, v as Vertex));
        }
    }
    e
}

/// `rows x cols` 4-neighbor grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize) -> Vec<(Vertex, Vertex)> {
    let id = |r: usize, c: usize| (r * cols + c) as Vertex;
    let mut e = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                e.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                e.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        assert_eq!(path(1).len(), 0);
        assert_eq!(path(5).len(), 4);
    }

    #[test]
    fn cycle_counts() {
        assert_eq!(cycle(3).len(), 3);
        assert_eq!(cycle(10).len(), 10);
    }

    #[test]
    fn star_counts() {
        assert_eq!(star(6).len(), 5);
        assert!(star(6).iter().all(|&(u, _)| u == 0));
    }

    #[test]
    fn complete_counts() {
        assert_eq!(complete(5).len(), 10);
    }

    #[test]
    fn grid_counts() {
        // 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
        assert_eq!(grid2d(3, 4).len(), 17);
    }
}
