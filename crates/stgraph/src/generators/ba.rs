//! Barabási–Albert preferential attachment generator.
//!
//! Produces connected scale-free graphs. Used for the citation/co-author
//! dataset analogues (Patent, CiteSeer, MiCo), whose degree skew is milder
//! than web graphs but still heavy-tailed.

use crate::csr::Vertex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Generates a Barabási–Albert graph: starts from a small clique of
/// `m_attach + 1` vertices, then each new vertex attaches to `m_attach`
/// existing vertices chosen with probability proportional to degree.
/// The result is connected by construction.
pub fn barabasi_albert(n: usize, m_attach: usize, rng: &mut ChaCha8Rng) -> Vec<(Vertex, Vertex)> {
    assert!(m_attach >= 1, "attachment count must be >= 1");
    assert!(
        n > m_attach,
        "need more vertices ({n}) than the attachment count ({m_attach})"
    );
    let mut edges: Vec<(Vertex, Vertex)> = Vec::with_capacity(n * m_attach);
    // `endpoints` holds each edge endpoint once; sampling uniformly from it
    // realizes degree-proportional selection.
    let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique over the first m_attach + 1 vertices.
    let seed = m_attach + 1;
    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u as Vertex, v as Vertex));
            endpoints.push(u as Vertex);
            endpoints.push(v as Vertex);
        }
    }

    for u in seed..n {
        let mut chosen = Vec::with_capacity(m_attach);
        while chosen.len() < m_attach {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u as Vertex && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for v in chosen {
            edges.push((u as Vertex, v));
            endpoints.push(u as Vertex);
            endpoints.push(v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::weighted_from_edges;
    use crate::traversal::connected_components;
    use crate::weights::WeightRange;
    use rand::SeedableRng;

    #[test]
    fn edge_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = 3;
        let n = 100;
        let edges = barabasi_albert(n, m, &mut rng);
        let clique = (m + 1) * m / 2;
        assert_eq!(edges.len(), clique + (n - m - 1) * m);
    }

    #[test]
    fn produces_connected_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let edges = barabasi_albert(200, 2, &mut rng);
        let g = weighted_from_edges(200, edges, WeightRange::unit(), &mut rng);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 1);
    }

    #[test]
    fn deterministic() {
        let e1 = barabasi_albert(50, 2, &mut ChaCha8Rng::seed_from_u64(5));
        let e2 = barabasi_albert(50, 2, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, &mut ChaCha8Rng::seed_from_u64(0));
    }
}
