//! Minimal JSON value type, writer, and parser.
//!
//! The build environment is offline (no serde), so the suite's
//! machine-readable outputs — run reports (`BENCH_*.json`) and Chrome
//! trace dumps — are produced through this module instead. It supplies
//! exactly the surface those consumers need:
//!
//! - [`Json`]: a value type whose objects are **insertion-ordered**
//!   key/value vectors, so an emitted schema is byte-stable run to run
//!   (a hash map would shuffle keys and break report diffing),
//! - a compact writer ([`std::fmt::Display`]) and a pretty writer
//!   ([`Json::to_pretty`]),
//! - a strict recursive-descent [`parse`] used by the schema-validation
//!   tooling (`cargo run -p xtask -- check-reports`).
//!
//! Numbers are `f64`, like JavaScript: integers are exact up to 2^53,
//! far beyond any counter this suite emits. Non-finite numbers serialize
//! as `null` (JSON has no NaN/Infinity).

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object. Panics on non-objects —
    /// construction-time misuse, not a data error.
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            other => panic!("Json::insert on non-object {other:?}"),
        }
    }

    /// Chainable [`Json::insert`] for literal-style construction.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.insert(key, value);
        self
    }

    /// Appends to an array. Panics on non-arrays (construction misuse).
    pub fn push(&mut self, value: impl Into<Json>) {
        match self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
    }

    /// Member lookup on objects (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders with two-space indentation (trailing newline included), for
    /// artifact files meant to be read by humans as well as tools.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            compact => out.push_str(&compact.to_string()),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T> From<Option<T>> for Json
where
    T: Into<Json>,
{
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity.
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        match self {
            Json::Null => buf.push_str("null"),
            Json::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(&mut buf, *n),
            Json::Str(s) => write_string(&mut buf, s),
            Json::Arr(items) => {
                buf.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push_str(&item.to_string());
                }
                buf.push(']');
            }
            Json::Obj(pairs) => {
                buf.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    write_string(&mut buf, k);
                    buf.push(':');
                    buf.push_str(&v.to_string());
                }
                buf.push('}');
            }
        }
        f.write_str(&buf)
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates
                            // become the replacement character.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run of plain characters up to the next
                    // quote, backslash, or end of input. The input is a
                    // &str and `"` / `\` are ASCII (never UTF-8
                    // continuation bytes), so the run is always a valid
                    // slice. Decoding one scalar at a time re-validated
                    // the entire remaining input per character, which made
                    // string-heavy documents (multi-MB trace exports)
                    // parse quadratically.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let doc = Json::obj()
            .with("name", "steiner")
            .with("version", 1u64)
            .with("ratio", 1.5)
            .with("ok", true)
            .with("missing", Json::Null)
            .with("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]));
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
        // Objects keep insertion order.
        assert!(text.find("\"name\"").unwrap() < text.find("\"version\"").unwrap());
    }

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::obj()
            .with(
                "a",
                Json::Arr(vec![Json::from("x"), Json::obj().with("b", 2u64)]),
            )
            .with("empty_obj", Json::obj())
            .with("empty_arr", Json::arr());
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = Json::Str("quote \" backslash \\ newline \n tab \t nul \u{1}".into());
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn unicode_and_surrogate_escapes() {
        assert_eq!(parse(r#""café""#).unwrap(), Json::Str("café".to_string()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        // Non-escaped multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn long_mixed_string_roundtrips() {
        // Exercises the bulk-copy fast path: long plain runs interleaved
        // with escapes and multi-byte scalars (the shape of a multi-MB
        // trace export, which must parse in linear time).
        let chunk = "plain ascii run 0123456789 … déjà 😀 \" \\ \n end";
        let original: String = std::iter::repeat_n(chunk, 500).collect();
        let doc = Json::Str(original);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-3.5").unwrap().as_f64(), Some(-3.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert!(Json::from(u64::MAX).to_string().parse::<f64>().is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": {"b": [1, "two", false]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap().len(), 3);
        assert_eq!(arr.as_arr().unwrap()[1].as_str(), Some("two"));
        assert_eq!(arr.as_arr().unwrap()[2].as_bool(), Some(false));
        assert!(doc.get("zzz").is_none());
        assert!(doc.as_arr().is_none());
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut o = Json::obj().with("k", 1u64);
        o.insert("k", 2u64);
        assert_eq!(o.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(o.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }
}
