//! The common Steiner tree result type shared by the distributed solver and
//! all sequential baselines.

use crate::csr::{CsrGraph, Distance, Vertex, Weight};
use std::collections::{HashMap, HashSet, VecDeque};

/// Structural summary of a Steiner tree (the kind of per-tree statistics
/// the paper's Fig 9 and Table IV discuss).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeMetrics {
    /// Edge count `|E_S|`.
    pub num_edges: usize,
    /// Degree-1 vertices (in a valid tree, all of them are seeds).
    pub num_leaves: usize,
    /// Leaves that are seeds.
    pub seed_leaves: usize,
    /// Non-seed vertices used.
    pub steiner_vertices: usize,
    /// Maximum vertex degree within the tree.
    pub max_degree: usize,
    /// Total distance `D(G_S)`.
    pub total_distance: Distance,
    /// Longest weighted path between two tree vertices.
    pub weighted_diameter: Distance,
    /// Longest hop path between two tree vertices.
    pub hop_diameter: u32,
}

/// A Steiner tree `G_S(V_S, E_S, d_S)` over a background graph: the edge set
/// connecting all seed vertices, plus the seeds it was built for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SteinerTree {
    /// Seed (terminal) vertices the tree spans.
    pub seeds: Vec<Vertex>,
    /// Tree edges as `(u, v, w)` with `u < v`, sorted.
    pub edges: Vec<(Vertex, Vertex, Weight)>,
}

impl SteinerTree {
    /// Builds a tree result from an arbitrary edge collection; edges are
    /// normalized to `u < v`, sorted, and deduplicated.
    pub fn new(
        seeds: impl IntoIterator<Item = Vertex>,
        edges: impl IntoIterator<Item = (Vertex, Vertex, Weight)>,
    ) -> Self {
        let mut seeds: Vec<Vertex> = seeds.into_iter().collect();
        seeds.sort_unstable();
        seeds.dedup();
        let mut edges: Vec<(Vertex, Vertex, Weight)> = edges
            .into_iter()
            .map(|(u, v, w)| if u < v { (u, v, w) } else { (v, u, w) })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        SteinerTree { seeds, edges }
    }

    /// Total distance `D(G_S)` — the sum of edge weights.
    pub fn total_distance(&self) -> Distance {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Number of tree edges `|E_S|` (the paper's Table IV metric).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All distinct vertices appearing in the tree (`V_S`); includes
    /// isolated seeds only when `|S| = 1` and the tree is empty.
    pub fn vertices(&self) -> Vec<Vertex> {
        let mut vs: Vec<Vertex> = self
            .edges
            .iter()
            .flat_map(|&(u, v, _)| [u, v])
            .chain(self.seeds.iter().copied())
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Steiner (non-seed) vertices used by the tree.
    pub fn steiner_vertices(&self) -> Vec<Vertex> {
        let seeds: HashSet<Vertex> = self.seeds.iter().copied().collect();
        self.vertices()
            .into_iter()
            .filter(|v| !seeds.contains(v))
            .collect()
    }

    /// Validates the full Steiner tree contract against the background
    /// graph `g`:
    ///
    /// 1. every tree edge exists in `g` with the stated weight,
    /// 2. the edge set is acyclic and connected (`|E_S| = |V_S| - 1` plus
    ///    reachability),
    /// 3. every seed is in `V_S`,
    /// 4. every leaf is a seed (no dangling Steiner vertices).
    ///
    /// Returns the first violation found.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        for &(u, v, w) in &self.edges {
            match g.edge_weight(u, v) {
                Some(gw) if gw == w => {}
                Some(gw) => {
                    return Err(format!(
                        "tree edge ({u},{v}) weight {w} differs from graph weight {gw}"
                    ))
                }
                None => return Err(format!("tree edge ({u},{v}) not in graph")),
            }
        }
        let vertices = self.vertices();
        if self.seeds.is_empty() {
            return Err("tree has no seeds".into());
        }
        if self.seeds.len() == 1 {
            return if self.edges.is_empty() {
                Ok(())
            } else {
                Err("single-seed tree must be empty".into())
            };
        }
        if self.edges.len() != vertices.len() - 1 {
            return Err(format!(
                "not a tree: {} edges over {} vertices",
                self.edges.len(),
                vertices.len()
            ));
        }
        // Connectivity by BFS over the tree's adjacency.
        let mut adj: HashMap<Vertex, Vec<Vertex>> = HashMap::new();
        for &(u, v, _) in &self.edges {
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        let mut seen: HashSet<Vertex> = HashSet::new();
        let mut queue = VecDeque::new();
        let start = vertices[0];
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in adj.get(&u).into_iter().flatten() {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        if seen.len() != vertices.len() {
            return Err(format!(
                "tree is disconnected: reached {} of {} vertices",
                seen.len(),
                vertices.len()
            ));
        }
        // Edge count == vertex count - 1 plus connected => acyclic.
        for &s in &self.seeds {
            if !seen.contains(&s) {
                return Err(format!("seed {s} not spanned by the tree"));
            }
        }
        // Leaves must be seeds.
        let seeds: HashSet<Vertex> = self.seeds.iter().copied().collect();
        for (&v, nbrs) in &adj {
            if nbrs.len() == 1 && !seeds.contains(&v) {
                return Err(format!("leaf {v} is a Steiner vertex"));
            }
        }
        Ok(())
    }

    /// Computes the structural metrics of the tree (see [`TreeMetrics`]).
    pub fn metrics(&self) -> TreeMetrics {
        let seeds: HashSet<Vertex> = self.seeds.iter().copied().collect();
        let mut adj: HashMap<Vertex, Vec<(Vertex, Weight)>> = HashMap::new();
        for &(u, v, w) in &self.edges {
            adj.entry(u).or_default().push((v, w));
            adj.entry(v).or_default().push((u, w));
        }
        let num_leaves = adj.values().filter(|n| n.len() == 1).count();
        let max_degree = adj.values().map(Vec::len).max().unwrap_or(0);
        let steiner_vertices = self.steiner_vertices().len();
        let seed_leaves = adj
            .iter()
            .filter(|(v, n)| n.len() == 1 && seeds.contains(v))
            .count();

        // Weighted diameter via double sweep (exact on trees).
        let farthest = |start: Vertex| -> (Vertex, Distance, u32) {
            let mut best = (start, 0u64, 0u32);
            let mut stack = vec![(start, start, 0u64, 0u32)];
            while let Some((v, parent, d, hops)) = stack.pop() {
                if d > best.1 {
                    best = (v, d, hops);
                }
                for &(n, w) in adj.get(&v).into_iter().flatten() {
                    if n != parent {
                        stack.push((n, v, d + w, hops + 1));
                    }
                }
            }
            best
        };
        let (weighted_diameter, hop_diameter) = match self.edges.first() {
            None => (0, 0),
            Some(&(start, _, _)) => {
                let (far, _, _) = farthest(start);
                let (_, d, h) = farthest(far);
                (d, h)
            }
        };
        TreeMetrics {
            num_edges: self.edges.len(),
            num_leaves,
            seed_leaves,
            steiner_vertices,
            max_degree,
            total_distance: self.total_distance(),
            weighted_diameter,
            hop_diameter,
        }
    }

    /// Serializes the tree in the suite's line-oriented text format
    /// (`seeds` line then one `edge u v w` line each), suitable for
    /// result pipelines; parse back with [`SteinerTree::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("steiner-tree v1\n");
        out.push_str("seeds");
        for s in &self.seeds {
            write!(out, " {s}").unwrap();
        }
        out.push('\n');
        for &(u, v, w) in &self.edges {
            writeln!(out, "edge {u} {v} {w}").unwrap();
        }
        out
    }

    /// Parses the format produced by [`SteinerTree::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("steiner-tree v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let seed_line = lines.next().ok_or("missing seeds line")?;
        let mut toks = seed_line.split_whitespace();
        if toks.next() != Some("seeds") {
            return Err("seeds line must start with 'seeds'".into());
        }
        let seeds: Vec<Vertex> = toks
            .map(|t| t.parse().map_err(|_| format!("bad seed {t:?}")))
            .collect::<Result<_, _>>()?;
        let mut edges = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            if toks.next() != Some("edge") {
                return Err(format!("expected edge line, got {line:?}"));
            }
            let mut num = |name: &str| -> Result<u64, String> {
                toks.next()
                    .ok_or_else(|| format!("edge line missing {name}"))?
                    .parse()
                    .map_err(|_| format!("bad {name} in {line:?}"))
            };
            let u = num("u")? as Vertex;
            let v = num("v")? as Vertex;
            let w = num("w")?;
            edges.push((u, v, w));
        }
        Ok(SteinerTree::new(seeds, edges))
    }

    /// Renders the tree as Graphviz DOT, highlighting seeds (red) and
    /// Steiner vertices (blue) like the paper's Fig 9.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let seeds: HashSet<Vertex> = self.seeds.iter().copied().collect();
        let mut out = String::from("graph steiner_tree {\n  node [style=filled];\n");
        for v in self.vertices() {
            let color = if seeds.contains(&v) {
                "red"
            } else {
                "lightblue"
            };
            writeln!(out, "  {v} [fillcolor={color}];").unwrap();
        }
        for &(u, v, w) in &self.edges {
            writeln!(out, "  {u} -- {v} [label={w}];").unwrap();
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)]);
        b.build()
    }

    #[test]
    fn valid_path_tree() {
        let g = path_graph();
        let t = SteinerTree::new([0, 3], [(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        assert!(t.validate(&g).is_ok());
        assert_eq!(t.total_distance(), 9);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.steiner_vertices(), vec![1, 2]);
    }

    #[test]
    fn rejects_wrong_weight() {
        let g = path_graph();
        let t = SteinerTree::new([0, 1], [(0, 1, 99)]);
        assert!(t.validate(&g).unwrap_err().contains("weight"));
    }

    #[test]
    fn rejects_missing_edge() {
        let g = path_graph();
        let t = SteinerTree::new([0, 2], [(0, 2, 5)]);
        assert!(t.validate(&g).unwrap_err().contains("not in graph"));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let g = b.build();
        let t = SteinerTree::new([0, 1], [(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        assert!(t.validate(&g).unwrap_err().contains("not a tree"));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (2, 3, 1)]);
        let g = b.build();
        let t = SteinerTree::new([0, 3], [(0, 1, 1), (2, 3, 1)]);
        let err = t.validate(&g).unwrap_err();
        assert!(err.contains("not a tree") || err.contains("disconnected"));
    }

    #[test]
    fn rejects_unspanned_seed() {
        let g = path_graph();
        let t = SteinerTree::new([0, 1, 4], [(0, 1, 2)]);
        let err = t.validate(&g).unwrap_err();
        assert!(err.contains("seed") || err.contains("not a tree"), "{err}");
    }

    #[test]
    fn rejects_steiner_leaf() {
        let g = path_graph();
        // Leaf 2 is not a seed.
        let t = SteinerTree::new([0, 1], [(0, 1, 2), (1, 2, 3)]);
        assert!(t.validate(&g).unwrap_err().contains("Steiner vertex"));
    }

    #[test]
    fn single_seed_empty_tree_is_valid() {
        let g = path_graph();
        let t = SteinerTree::new([2], []);
        assert!(t.validate(&g).is_ok());
        assert_eq!(t.total_distance(), 0);
    }

    #[test]
    fn normalizes_edge_direction() {
        let t = SteinerTree::new([0, 1], [(1, 0, 2)]);
        assert_eq!(t.edges, vec![(0, 1, 2)]);
    }

    #[test]
    fn metrics_on_path_tree() {
        let t = SteinerTree::new([0, 3], [(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        let m = t.metrics();
        assert_eq!(m.num_edges, 3);
        assert_eq!(m.num_leaves, 2);
        assert_eq!(m.seed_leaves, 2);
        assert_eq!(m.steiner_vertices, 2);
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.total_distance, 9);
        assert_eq!(m.weighted_diameter, 9);
        assert_eq!(m.hop_diameter, 3);
    }

    #[test]
    fn metrics_on_star_tree() {
        let t = SteinerTree::new([1, 2, 3], [(0, 1, 5), (0, 2, 7), (0, 3, 2)]);
        let m = t.metrics();
        assert_eq!(m.num_leaves, 3);
        assert_eq!(m.max_degree, 3);
        assert_eq!(m.weighted_diameter, 12); // 1 -> 0 -> 2
        assert_eq!(m.hop_diameter, 2);
    }

    #[test]
    fn metrics_on_empty_tree() {
        let t = SteinerTree::new([4], []);
        let m = t.metrics();
        assert_eq!(m.num_edges, 0);
        assert_eq!(m.weighted_diameter, 0);
    }

    #[test]
    fn text_format_roundtrips() {
        let t = SteinerTree::new([0, 3, 7], [(0, 1, 2), (1, 3, 5), (1, 7, 9)]);
        let parsed = SteinerTree::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn text_format_rejects_garbage() {
        assert!(SteinerTree::from_text("").is_err());
        assert!(SteinerTree::from_text("steiner-tree v1\n").is_err());
        assert!(SteinerTree::from_text("steiner-tree v1\nseeds 1\nbogus\n").is_err());
        assert!(SteinerTree::from_text("steiner-tree v1\nseeds 1\nedge 1 x 2\n").is_err());
    }

    #[test]
    fn dot_output_mentions_all_vertices() {
        let t = SteinerTree::new([0, 2], [(0, 1, 2), (1, 2, 3)]);
        let dot = t.to_dot();
        assert!(dot.contains("0 [fillcolor=red]"));
        assert!(dot.contains("1 [fillcolor=lightblue]"));
        assert!(dot.contains("0 -- 1 [label=2]"));
    }
}
