//! Graph statistics used by experiment harnesses and dataset validation.

use crate::csr::CsrGraph;

/// Summary characteristics of a graph, mirroring the columns of the paper's
/// Table III (vertices, 2|E|, max degree, avg degree, weight range, size).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count `|V|`.
    pub num_vertices: usize,
    /// Directed arc count `2|E|`.
    pub num_arcs: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Smallest and largest edge weight (`(1, 1)` for an edgeless graph).
    pub weight_range: (u64, u64),
    /// In-memory size in bytes of the CSR representation.
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes the summary for `g`.
    pub fn of(g: &CsrGraph) -> Self {
        GraphStats {
            num_vertices: g.num_vertices(),
            num_arcs: g.num_arcs(),
            max_degree: g.max_degree(),
            avg_degree: g.avg_degree(),
            weight_range: g.weight_range().unwrap_or((1, 1)),
            memory_bytes: g.memory_bytes(),
        }
    }
}

/// Degree histogram in power-of-two buckets; isolated vertices are counted
/// separately in `zero`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Number of isolated (degree-0) vertices.
    pub zero: usize,
    /// `buckets[i]` counts vertices with degree in `[2^i, 2^(i+1))`.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram for `g`.
    pub fn of(g: &CsrGraph) -> Self {
        let mut h = DegreeHistogram::default();
        for v in g.vertices() {
            let d = g.degree(v);
            if d == 0 {
                h.zero += 1;
            } else {
                let b = (usize::BITS - 1 - d.leading_zeros()) as usize;
                if h.buckets.len() <= b {
                    h.buckets.resize(b + 1, 0);
                }
                h.buckets[b] += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn stats_of_star() {
        let mut b = GraphBuilder::new(5);
        for (u, v) in generators::star(5) {
            b.add_edge(u, v, 3);
        }
        let g = b.build();
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_arcs, 8);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.weight_range, (3, 3));
    }

    #[test]
    fn degree_histogram_buckets() {
        // Star on 5: center degree 4 (bucket 2), leaves degree 1 (bucket 0).
        let mut b = GraphBuilder::new(6);
        for (u, v) in generators::star(5) {
            b.add_edge(u, v, 1);
        }
        let g = b.build(); // vertex 5 isolated
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.zero, 1);
        assert_eq!(h.buckets[0], 4);
        assert_eq!(h.buckets[2], 1);
    }
}
