//! Edge-list ingestion and CSR assembly.
//!
//! The builder accepts an arbitrary multiset of weighted edges, then
//! symmetrizes (emitting both arcs of every undirected edge), drops
//! self-loops, deduplicates parallel edges keeping the minimum weight
//! (the natural choice when smaller weight means stronger relationship),
//! and produces a [`CsrGraph`] whose adjacency lists are sorted.

use crate::csr::{CsrGraph, Vertex, Weight};

/// Accumulates weighted edges and assembles a symmetric [`CsrGraph`].
///
/// ```
/// use stgraph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 4);
/// b.add_edge(1, 2, 2);
/// b.add_edge(1, 0, 9); // parallel edge: the minimum weight wins
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(0, 1), Some(4));
/// assert_eq!(g.edge_weight(1, 0), Some(4)); // symmetric
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(Vertex, Vertex, Weight)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= Vertex::MAX as usize, "vertex count exceeds id space");
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates room for `m` undirected edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge records added so far (before dedup/symmetrization).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` with weight `w >= 1`. Self-loops are
    /// silently dropped (the Steiner problem never uses them). Panics on
    /// out-of-range endpoints or a zero weight.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(w >= 1, "edge weights must be positive integers");
        if u == v {
            return;
        }
        self.edges.push((u, v, w));
    }

    /// Adds every edge in `it`.
    pub fn extend_edges<I: IntoIterator<Item = (Vertex, Vertex, Weight)>>(&mut self, it: I) {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
    }

    /// Assembles the CSR graph: symmetrize, sort, dedup (min weight wins).
    pub fn build(self) -> CsrGraph {
        let n = self.num_vertices;
        // Emit both arcs.
        let mut arcs = Vec::with_capacity(self.edges.len() * 2);
        for (u, v, w) in self.edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        // Sort by (src, dst, weight) so dedup keeps the minimum weight.
        arcs.sort_unstable();
        arcs.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);

        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(arcs.len());
        let mut weights = Vec::with_capacity(arcs.len());
        for (_, v, w) in arcs {
            targets.push(v);
            weights.push(w);
        }
        CsrGraph::from_raw_parts(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrizes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.edge_weight(1, 0), Some(3));
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 3);
        b.add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 4);
        b.add_edge(0, 1, 6);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(4));
        assert_eq!(g.edge_weight(1, 0), Some(4));
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn built_graph_is_valid() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(0, 1, 1), (1, 2, 2), (3, 4, 3), (0, 4, 8), (2, 3, 1)]);
        let g = b.build();
        assert!(g.validate_symmetric().is_ok());
    }

    #[test]
    fn isolated_vertices_allowed() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
    }
}
