//! Registry of scaled-down analogues of the paper's eight datasets.
//!
//! The paper evaluates on eight real-world graphs (Table III), from CiteSeer
//! (3.3K vertices) up to Web Data Commons 2012 (3.5B vertices / 257B arcs).
//! The full-scale corpora are multi-terabyte and need a cluster; this
//! registry reproduces each graph's *shape* at laptop scale:
//!
//! - web graphs (WDC, CLW, UKW) → heavily skewed RMAT (Graph500 parameters),
//! - social graphs (FSR, LVJ)   → mildly skewed RMAT ("social" parameters),
//! - citation/co-author graphs (PTN, MCO, CTS) → Barabási–Albert,
//!
//! with each analogue's edge-weight range taken verbatim from Table III and
//! relative sizes preserved (WDC largest … CTS smallest). Every generator
//! call is seeded, so a `(dataset, seed)` pair is fully reproducible.

use crate::csr::CsrGraph;
use crate::generators::{barabasi_albert, rmat, weighted_from_edges, RmatParams};
use crate::weights::WeightRange;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The eight paper datasets (Table III), by their paper abbreviations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Web Data Commons 2012 — the paper's largest graph (3.5B vertices).
    Wdc,
    /// ClueWeb 2012 (978M vertices).
    Clw,
    /// UK Web 2007-05 (105M vertices).
    Ukw,
    /// Friendster (66M vertices).
    Frs,
    /// LiveJournal (4.8M vertices).
    Lvj,
    /// Patent citation graph (2.7M vertices).
    Ptn,
    /// MiCo co-authorship graph (100K vertices).
    Mco,
    /// CiteSeer citation graph (3.3K vertices).
    Cts,
}

/// How a dataset analogue is synthesized.
#[derive(Clone, Copy, Debug)]
enum Family {
    Rmat {
        scale: u32,
        edge_factor: usize,
        params: RmatParams,
    },
    Ba {
        n: usize,
        m_attach: usize,
    },
}

impl Dataset {
    /// All eight datasets, largest first (the paper's Table III order).
    pub const ALL: [Dataset; 8] = [
        Dataset::Wdc,
        Dataset::Clw,
        Dataset::Ukw,
        Dataset::Frs,
        Dataset::Lvj,
        Dataset::Ptn,
        Dataset::Mco,
        Dataset::Cts,
    ];

    /// The four "large" graphs used in the strong-scaling experiment (Fig 3).
    pub const LARGE: [Dataset; 4] = [Dataset::Frs, Dataset::Ukw, Dataset::Clw, Dataset::Wdc];

    /// The four "small" graphs used in the related-work comparison
    /// (Tables VI & VII).
    pub const SMALL: [Dataset; 4] = [Dataset::Lvj, Dataset::Ptn, Dataset::Mco, Dataset::Cts];

    /// The paper's abbreviation for this dataset.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Wdc => "WDC",
            Dataset::Clw => "CLW",
            Dataset::Ukw => "UKW",
            Dataset::Frs => "FRS",
            Dataset::Lvj => "LVJ",
            Dataset::Ptn => "PTN",
            Dataset::Mco => "MCO",
            Dataset::Cts => "CTS",
        }
    }

    /// Edge-weight range, verbatim from Table III.
    pub fn weight_range(&self) -> WeightRange {
        match self {
            Dataset::Wdc => WeightRange::new(1, 500_000),
            Dataset::Clw => WeightRange::new(1, 100_000),
            Dataset::Ukw => WeightRange::new(1, 75_000),
            Dataset::Frs => WeightRange::new(1, 50_000),
            Dataset::Lvj => WeightRange::new(1, 5_000),
            Dataset::Ptn => WeightRange::new(1, 5_000),
            Dataset::Mco => WeightRange::new(1, 2_000),
            Dataset::Cts => WeightRange::new(1, 1_000),
        }
    }

    fn family(&self) -> Family {
        match self {
            // Web graphs: strongly skewed RMAT.
            Dataset::Wdc => Family::Rmat {
                scale: 15,
                edge_factor: 20,
                params: RmatParams::graph500(),
            },
            Dataset::Clw => Family::Rmat {
                scale: 14,
                edge_factor: 20,
                params: RmatParams::graph500(),
            },
            Dataset::Ukw => Family::Rmat {
                scale: 13,
                edge_factor: 18,
                params: RmatParams::graph500(),
            },
            // Social graphs: milder skew.
            Dataset::Frs => Family::Rmat {
                scale: 13,
                edge_factor: 14,
                params: RmatParams::social(),
            },
            Dataset::Lvj => Family::Rmat {
                scale: 12,
                edge_factor: 9,
                params: RmatParams::social(),
            },
            // Citation / co-author graphs: preferential attachment.
            Dataset::Ptn => Family::Ba {
                n: 2700,
                m_attach: 5,
            },
            Dataset::Mco => Family::Ba {
                n: 1000,
                m_attach: 11,
            },
            Dataset::Cts => Family::Ba {
                n: 330,
                m_attach: 2,
            },
        }
    }

    /// Vertex count of the analogue.
    pub fn num_vertices(&self) -> usize {
        match self.family() {
            Family::Rmat { scale, .. } => 1usize << scale,
            Family::Ba { n, .. } => n,
        }
    }

    /// Generates the analogue graph, deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> CsrGraph {
        // Mix the dataset identity into the stream so two datasets with the
        // same user seed still differ.
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (self.name().len() as u64) << 56 ^ *self as u64);
        let range = self.weight_range();
        match self.family() {
            Family::Rmat {
                scale,
                edge_factor,
                params,
            } => {
                let n = 1usize << scale;
                let edges = rmat(scale, n * edge_factor / 2, params, &mut rng);
                weighted_from_edges(n, edges, range, &mut rng)
            }
            Family::Ba { n, m_attach } => {
                let edges = barabasi_albert(n, m_attach, &mut rng);
                weighted_from_edges(n, edges, range, &mut rng)
            }
        }
    }

    /// Generates a miniature (test-sized) variant: same family, same weight
    /// range, but at most ~2^10 vertices. Used by integration tests that
    /// need the dataset's character without its cost.
    pub fn generate_tiny(&self, seed: u64) -> CsrGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE ^ *self as u64);
        let range = self.weight_range();
        match self.family() {
            Family::Rmat { params, .. } => {
                let edges = rmat(10, 6 * 1024, params, &mut rng);
                weighted_from_edges(1 << 10, edges, range, &mut rng)
            }
            Family::Ba { m_attach, .. } => {
                let edges = barabasi_albert(512, m_attach.min(4), &mut rng);
                weighted_from_edges(512, edges, range, &mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn sizes_ordered_largest_first() {
        let sizes: Vec<_> = Dataset::ALL.iter().map(|d| d.num_vertices()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "Table III ordering violated: {sizes:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Cts.generate(1);
        let b = Dataset::Cts.generate(1);
        assert_eq!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Cts.generate(1);
        let b = Dataset::Cts.generate(2);
        assert_ne!(
            a.undirected_edges().collect::<Vec<_>>(),
            b.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn weight_ranges_respected() {
        let g = Dataset::Mco.generate(3);
        let (lo, hi) = g.weight_range().unwrap();
        assert!(lo >= 1);
        assert!(hi <= 2_000);
    }

    #[test]
    fn cts_is_valid_and_small() {
        let g = Dataset::Cts.generate(7);
        assert!(g.validate_symmetric().is_ok());
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 330);
        assert!(s.avg_degree > 2.0);
    }

    #[test]
    fn tiny_variants_are_small() {
        for d in Dataset::ALL {
            let g = d.generate_tiny(5);
            assert!(g.num_vertices() <= 1024, "{} tiny too big", d.name());
            assert!(g.num_edges() > 0);
        }
    }
}
