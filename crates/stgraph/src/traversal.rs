//! Unweighted traversals: BFS levels and connected components.
//!
//! The paper's seed-selection machinery (§V "Seed Vertex Selection" and the
//! §V-E alternatives) is built on BFS levels within the largest connected
//! component; these routines provide that substrate.

use crate::csr::{CsrGraph, Vertex};
use std::collections::VecDeque;

/// Level of an unreached vertex in [`bfs_levels`].
pub const UNREACHED: u32 = u32::MAX;

/// BFS from `source`; returns per-vertex hop levels (`UNREACHED` where the
/// vertex is not reachable).
pub fn bfs_levels(g: &CsrGraph, source: Vertex) -> Vec<u32> {
    let mut level = vec![UNREACHED; g.num_vertices()];
    let mut queue = VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize] + 1;
        for &v in g.neighbors(u) {
            if level[v as usize] == UNREACHED {
                level[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    level
}

/// Result of a connected-components labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per vertex, in `0..num_components`.
    pub label: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Vertex count of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Id of the largest component.
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(i, _)| i as u32)
            .expect("graph has at least one vertex")
    }

    /// All vertices belonging to the largest component, ascending.
    pub fn largest_component_vertices(&self) -> Vec<Vertex> {
        let target = self.largest();
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == target)
            .map(|(v, _)| v as Vertex)
            .collect()
    }

    /// Whether vertices `u` and `v` are in the same component.
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }
}

/// Labels connected components with iterative BFS.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        label[start] = id;
        queue.push_back(start as Vertex);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = id;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    let num_components = sizes.len();
    Components {
        label,
        num_components,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::new(7);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        b.extend_edges([(3, 4, 1), (4, 5, 1), (3, 5, 1)]);
        // vertex 6 isolated
        b.build()
    }

    #[test]
    fn bfs_levels_on_path() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let g = b.build();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreached() {
        let g = two_triangles();
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[3], UNREACHED);
        assert_eq!(levels[6], UNREACHED);
    }

    #[test]
    fn components_count() {
        let g = two_triangles();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 3);
        assert_eq!(cc.sizes.iter().sum::<usize>(), 7);
        assert!(cc.same_component(0, 2));
        assert!(!cc.same_component(0, 3));
    }

    #[test]
    fn largest_component() {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1)]); // size 4
        b.extend_edges([(4, 5, 1)]); // size 2
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.largest_component_vertices(), vec![0, 1, 2, 3]);
    }
}
