//! Immutable compressed-sparse-row (CSR) weighted graph.
//!
//! The graph is stored as a flat adjacency structure: `offsets[v]..offsets[v+1]`
//! indexes into `targets`/`weights`. Graphs produced by [`crate::GraphBuilder`]
//! are symmetric (every undirected edge appears as two directed arcs with the
//! same weight) and have their adjacency lists sorted by target vertex, which
//! enables `O(log deg)` edge lookups via binary search.

/// Vertex identifier. 32 bits comfortably covers the scaled-down analogues
/// this suite works with (the paper's full-scale graphs would need 64).
pub type Vertex = u32;

/// Edge weight: the paper's distance function maps edges to positive
/// integers, `d(u, v) ∈ Z+ \ {0}`.
pub type Weight = u64;

/// Path distance (sum of edge weights).
pub type Distance = u64;

/// Sentinel "unreached" distance.
pub const INF: Distance = u64::MAX;

/// An immutable weighted graph in CSR form.
///
/// Invariants (established by [`crate::GraphBuilder`]):
/// - `offsets.len() == num_vertices + 1`, monotonically non-decreasing;
/// - `targets.len() == weights.len() == offsets[num_vertices]`;
/// - each adjacency list is sorted by target and free of duplicates
///   and self-loops;
/// - all weights are `>= 1`;
/// - the arc set is symmetric with matching weights.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<Vertex>,
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Assembles a CSR graph from raw parts. Callers outside the builder
    /// should prefer [`crate::GraphBuilder`]; this performs only cheap
    /// structural checks (lengths and offset monotonicity) and panics on
    /// violation.
    pub fn from_raw_parts(offsets: Vec<u64>, targets: Vec<Vertex>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            targets.len(),
            weights.len(),
            "targets and weights must be parallel arrays"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            targets.len(),
            "last offset must equal arc count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs (twice the undirected edge count for the
    /// symmetric graphs this suite uses — the paper reports `2|E|`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges, assuming the arc set is symmetric.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_arcs() / 2
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The adjacency range of `v` in the flat arrays.
    #[inline]
    fn range(&self, v: Vertex) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Neighbor vertices of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.targets[self.range(v)]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: Vertex) -> &[Weight] {
        &self.weights[self.range(v)]
    }

    /// Iterator over `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn edges(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let r = self.range(v);
        self.targets[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.num_vertices() as Vertex
    }

    /// Iterator over every directed arc `(u, v, w)`.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        self.vertices()
            .flat_map(move |u| self.edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Iterator over each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        self.arcs().filter(|&(u, v, _)| u < v)
    }

    /// Weight of arc `(u, v)` if present. `O(log deg(u))`.
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v)
            .ok()
            .map(|i| self.neighbor_weights(u)[i])
    }

    /// Whether arc `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Sum of all undirected edge weights.
    pub fn total_weight(&self) -> u128 {
        // Each undirected edge appears as two arcs with equal weight.
        self.weights.iter().map(|&w| w as u128).sum::<u128>() / 2
    }

    /// Maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Smallest and largest edge weight, or `None` for an edgeless graph.
    pub fn weight_range(&self) -> Option<(Weight, Weight)> {
        if self.weights.is_empty() {
            return None;
        }
        let mut lo = Weight::MAX;
        let mut hi = 0;
        for &w in &self.weights {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        Some((lo, hi))
    }

    /// Approximate in-memory footprint in bytes (the Fig 8 "graph" series).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<Vertex>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Verifies the symmetric-graph invariants in `O(m log d)`; used by
    /// tests and the binary loader. Returns a description of the first
    /// violation found.
    pub fn validate_symmetric(&self) -> Result<(), String> {
        for u in self.vertices() {
            let nbrs = self.neighbors(u);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} not strictly sorted"));
            }
            for (v, w) in self.edges(u) {
                if v as usize >= self.num_vertices() {
                    return Err(format!("arc ({u},{v}) out of range"));
                }
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if w == 0 {
                    return Err(format!("zero weight on ({u},{v})"));
                }
                match self.edge_weight(v, u) {
                    Some(rw) if rw == w => {}
                    Some(rw) => return Err(format!("asymmetric weight on ({u},{v}): {w} vs {rw}")),
                    None => return Err(format!("missing reverse arc ({v},{u})")),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 7);
        b.add_edge(0, 2, 9);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn neighbors_sorted() {
        let g = triangle();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn total_weight_counts_each_edge_once() {
        let g = triangle();
        assert_eq!(g.total_weight(), 5 + 7 + 9);
    }

    #[test]
    fn degrees() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.weight_range(), None);
        assert!(g.validate_symmetric().is_ok());
    }

    #[test]
    fn undirected_edges_iterates_once_per_edge() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges, vec![(0, 1, 5), (0, 2, 9), (1, 2, 7)]);
    }

    #[test]
    fn validate_detects_good_graph() {
        assert!(triangle().validate_symmetric().is_ok());
    }

    #[test]
    fn weight_range() {
        let g = triangle();
        assert_eq!(g.weight_range(), Some((5, 9)));
    }

    #[test]
    #[should_panic]
    fn from_raw_parts_rejects_bad_offsets() {
        CsrGraph::from_raw_parts(vec![0, 2, 1], vec![1], vec![1]);
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
