//! Property-based tests over the graph substrate.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vertex, Weight};
use crate::partition::{partition_graph, BlockPartition};
use crate::traversal::connected_components;
use proptest::prelude::*;

/// Strategy: an arbitrary small weighted edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..n as Vertex, 0..n as Vertex, 1..1000u64 as Weight),
            0..max_m,
        )
        .prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn built_graphs_satisfy_invariants(g in arb_graph(40, 200)) {
        prop_assert!(g.validate_symmetric().is_ok());
    }

    #[test]
    fn arc_count_is_twice_edge_count(g in arb_graph(40, 200)) {
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    #[test]
    fn block_partition_covers_all_vertices(n in 1usize..200, p in 1usize..17) {
        let part = BlockPartition::new(n, p);
        let mut seen = vec![false; n];
        for rank in 0..p {
            for v in part.range(rank) {
                prop_assert!(!seen[v as usize], "vertex {} owned twice", v);
                seen[v as usize] = true;
                prop_assert_eq!(part.owner(v), rank);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn block_partition_is_balanced(n in 1usize..500, p in 1usize..17) {
        let part = BlockPartition::new(n, p);
        let sizes: Vec<usize> = (0..p).map(|r| part.range(r).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced: {:?}", sizes);
    }

    #[test]
    fn partitioned_arcs_cover_graph(
        g in arb_graph(30, 120),
        p in 1usize..7,
        thresh in proptest::option::of(1usize..12),
    ) {
        let pg = partition_graph(&g, p, thresh);
        let mut local: Vec<_> = pg.ranks.iter()
            .flat_map(|r| r.local_arcs().collect::<Vec<_>>())
            .collect();
        local.sort_unstable();
        let mut global: Vec<_> = g.arcs().collect();
        global.sort_unstable();
        prop_assert_eq!(local, global);
    }

    #[test]
    fn components_partition_vertices(g in arb_graph(40, 100)) {
        let cc = connected_components(&g);
        prop_assert_eq!(cc.label.len(), g.num_vertices());
        prop_assert_eq!(cc.sizes.iter().sum::<usize>(), g.num_vertices());
        // Every edge stays within one component.
        for (u, v, _) in g.undirected_edges() {
            prop_assert!(cc.same_component(u, v));
        }
    }

    #[test]
    fn edge_list_io_roundtrips(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        crate::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = crate::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(
            g.undirected_edges().collect::<Vec<_>>(),
            g2.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn binary_io_roundtrips(g in arb_graph(30, 100)) {
        let mut buf = Vec::new();
        crate::io::write_binary(&g, &mut buf).unwrap();
        let g2 = crate::io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(
            g.undirected_edges().collect::<Vec<_>>(),
            g2.undirected_edges().collect::<Vec<_>>()
        );
    }
}
