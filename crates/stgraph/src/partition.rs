//! Graph partitioning for the simulated distributed runtime.
//!
//! The paper's implementation partitions the data graph so that "partitions
//! have approximately equal share of vertices; each partition is assigned to
//! an MPI process" (§IV), and relies on HavoqGT's *vertex delegates* to
//! spread the edges of high-degree hub vertices across partitions — crucial
//! for load balance on scale-free graphs.
//!
//! [`BlockPartition`] is the owner map (contiguous, balanced vertex blocks).
//! [`partition_graph`] materializes per-rank subgraphs ([`RankGraph`]): each
//! rank stores the full adjacency of its owned non-delegate vertices plus a
//! round-robin slice of every delegate's adjacency.

use crate::csr::{CsrGraph, Vertex, Weight};
use std::ops::Range;
use std::sync::Arc;

/// Contiguous block partition of `n` vertices over `p` ranks. The first
/// `n % p` blocks get one extra vertex, so block sizes differ by at most 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    n: usize,
    p: usize,
}

impl BlockPartition {
    /// A partition of `n` vertices across `p >= 1` ranks.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        BlockPartition { n, p }
    }

    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// The rank owning vertex `v`.
    pub fn owner(&self, v: Vertex) -> usize {
        let v = v as usize;
        debug_assert!(v < self.n);
        let base = self.n / self.p;
        let extra = self.n % self.p;
        // Ranks 0..extra own (base+1) vertices each; the rest own base.
        let boundary = extra * (base + 1);
        if v < boundary {
            v / (base + 1)
        } else {
            // When base == 0 every vertex is below `boundary` (= n), so
            // this division is reached only with base >= 1.
            debug_assert!(base >= 1);
            extra + (v - boundary) / base
        }
    }

    /// The half-open vertex range owned by `rank`.
    pub fn range(&self, rank: usize) -> Range<Vertex> {
        assert!(rank < self.p);
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let lo = if rank <= extra {
            rank * (base + 1)
        } else {
            extra * (base + 1) + (rank - extra) * base
        };
        let len = if rank < extra { base + 1 } else { base };
        (lo as Vertex)..((lo + len) as Vertex)
    }
}

/// Per-rank share of the distributed graph.
#[derive(Clone, Debug)]
pub struct RankGraph {
    /// This rank's id.
    pub rank: usize,
    /// Vertices owned by this rank.
    pub owned: Range<Vertex>,
    /// Sorted global list of delegate (high-degree) vertices, shared by all
    /// ranks.
    pub delegates: Arc<Vec<Vertex>>,
    // CSR over owned vertices. Owned delegates have an empty adjacency here;
    // their edges live in the per-rank delegate slices instead.
    offsets: Vec<u64>,
    targets: Vec<Vertex>,
    weights: Vec<Weight>,
    // This rank's round-robin share of every delegate's adjacency, in
    // delegate-list order (parallel to `delegates`).
    delegate_slices: Vec<Vec<(Vertex, Weight)>>,
}

impl RankGraph {
    /// Builds a rank subgraph from arcs gathered at runtime — the
    /// constructor used by distributed ingestion (`steiner::kernels`),
    /// where each rank receives its owned vertices' arcs over the network
    /// instead of slicing a resident [`CsrGraph`].
    ///
    /// `owned_arcs` holds arcs whose source this rank owns (delegate
    /// sources excluded); `delegate_arcs[i]` is this rank's share of
    /// `delegates[i]`'s adjacency. Arcs may arrive in any order.
    pub fn from_arcs(
        rank: usize,
        owned: Range<Vertex>,
        delegates: Arc<Vec<Vertex>>,
        mut owned_arcs: Vec<(Vertex, Vertex, Weight)>,
        delegate_arcs: Vec<Vec<(Vertex, Weight)>>,
    ) -> Self {
        assert_eq!(delegate_arcs.len(), delegates.len());
        owned_arcs.sort_unstable();
        // Parallel arcs keep the minimum weight, like `GraphBuilder`.
        owned_arcs.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);
        let num_owned = (owned.end - owned.start) as usize;
        let mut offsets = vec![0u64; num_owned + 1];
        for &(u, _, _) in &owned_arcs {
            assert!(
                owned.contains(&u) && delegates.binary_search(&u).is_err(),
                "arc source {u} does not belong in rank {rank}'s owned storage"
            );
            offsets[(u - owned.start) as usize + 1] += 1;
        }
        for i in 0..num_owned {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(owned_arcs.len());
        let mut weights = Vec::with_capacity(owned_arcs.len());
        for (_, v, w) in owned_arcs {
            targets.push(v);
            weights.push(w);
        }
        RankGraph {
            rank,
            owned,
            delegates,
            offsets,
            targets,
            weights,
            delegate_slices: delegate_arcs,
        }
    }

    /// Whether this rank owns vertex `v`.
    #[inline]
    pub fn owns(&self, v: Vertex) -> bool {
        self.owned.contains(&v)
    }

    /// Number of owned vertices.
    #[inline]
    pub fn num_owned(&self) -> usize {
        (self.owned.end - self.owned.start) as usize
    }

    /// Whether `v` is a delegate (replicated hub) vertex.
    #[inline]
    pub fn is_delegate(&self, v: Vertex) -> bool {
        self.delegates.binary_search(&v).is_ok()
    }

    fn delegate_index(&self, v: Vertex) -> Option<usize> {
        self.delegates.binary_search(&v).ok()
    }

    /// Adjacency of an owned, non-delegate vertex `v`.
    ///
    /// Panics if `v` is not owned; returns an empty slice pair for an owned
    /// delegate (its edges are in the delegate slices).
    pub fn adj(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        assert!(self.owns(v), "rank {} does not own {v}", self.rank);
        let i = (v - self.owned.start) as usize;
        let r = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        self.targets[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// This rank's slice of delegate `v`'s adjacency (empty if this rank
    /// received no share). Panics if `v` is not a delegate.
    pub fn delegate_slice(&self, v: Vertex) -> &[(Vertex, Weight)] {
        let i = self
            .delegate_index(v)
            .unwrap_or_else(|| panic!("{v} is not a delegate"));
        &self.delegate_slices[i]
    }

    /// Number of arcs stored locally (owned adjacency + delegate slices).
    pub fn num_local_arcs(&self) -> usize {
        self.targets.len() + self.delegate_slices.iter().map(|s| s.len()).sum::<usize>()
    }

    /// Approximate local memory footprint in bytes (Fig 8 "graph" series).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<Vertex>()
            + self.weights.len() * std::mem::size_of::<Weight>()
            + self
                .delegate_slices
                .iter()
                .map(|s| s.len() * std::mem::size_of::<(Vertex, Weight)>())
                .sum::<usize>()
    }

    /// Iterator over every arc `(u, v, w)` stored on this rank — owned
    /// adjacency plus delegate slices. Used by the edge-centric
    /// min-distance-edge phase (Alg 5), which scans "every (u, v) ∈ E local
    /// to a partition".
    pub fn local_arcs(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        let owned = self
            .owned
            .clone()
            .filter(move |&v| !self.is_delegate(v))
            .flat_map(move |u| self.adj(u).map(move |(v, w)| (u, v, w)));
        let delegated =
            self.delegates.iter().enumerate().flat_map(move |(i, &d)| {
                self.delegate_slices[i].iter().map(move |&(v, w)| (d, v, w))
            });
        owned.chain(delegated)
    }
}

/// Distributed view of a graph: the owner map plus every rank's subgraph.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    /// The owner map.
    pub partition: BlockPartition,
    /// Per-rank subgraphs, indexed by rank.
    pub ranks: Vec<RankGraph>,
    /// Sorted global delegate list.
    pub delegates: Arc<Vec<Vertex>>,
}

/// Splits `g` into `p` rank subgraphs. Vertices with degree at least
/// `delegate_threshold` (if given) become *delegates*: their adjacency is
/// dealt round-robin across all ranks, mirroring HavoqGT's vertex-cut
/// treatment of scale-free hubs. `None` disables delegation.
pub fn partition_graph(
    g: &CsrGraph,
    p: usize,
    delegate_threshold: Option<usize>,
) -> PartitionedGraph {
    let n = g.num_vertices();
    let partition = BlockPartition::new(n, p);

    let mut delegates: Vec<Vertex> = match delegate_threshold {
        Some(t) => g.vertices().filter(|&v| g.degree(v) >= t).collect(),
        None => Vec::new(),
    };
    delegates.sort_unstable();
    let delegates = Arc::new(delegates);

    let mut ranks = Vec::with_capacity(p);
    for rank in 0..p {
        let owned = partition.range(rank);
        let num_owned = (owned.end - owned.start) as usize;
        let mut offsets = Vec::with_capacity(num_owned + 1);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0u64);
        for v in owned.clone() {
            if delegates.binary_search(&v).is_err() {
                for (t, w) in g.edges(v) {
                    targets.push(t);
                    weights.push(w);
                }
            }
            offsets.push(targets.len() as u64);
        }
        // Round-robin share of each delegate's arcs.
        let delegate_slices = delegates
            .iter()
            .map(|&d| {
                g.edges(d)
                    .enumerate()
                    .filter(|(i, _)| i % p == rank)
                    .map(|(_, e)| e)
                    .collect::<Vec<_>>()
            })
            .collect();
        ranks.push(RankGraph {
            rank,
            owned,
            delegates: Arc::clone(&delegates),
            offsets,
            targets,
            weights,
            delegate_slices,
        });
    }
    PartitionedGraph {
        partition,
        ranks,
        delegates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn star_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for (u, v) in generators::star(n) {
            b.add_edge(u, v, 1);
        }
        b.build()
    }

    #[test]
    fn block_partition_balanced() {
        let p = BlockPartition::new(10, 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        for v in 0..10u32 {
            let o = p.owner(v);
            assert!(p.range(o).contains(&v), "owner({v}) = {o} inconsistent");
        }
    }

    #[test]
    fn block_partition_even_split() {
        let p = BlockPartition::new(8, 4);
        for r in 0..4 {
            assert_eq!(p.range(r).len(), 2);
        }
    }

    #[test]
    fn block_partition_single_rank() {
        let p = BlockPartition::new(5, 1);
        assert_eq!(p.range(0), 0..5);
        assert_eq!(p.owner(4), 0);
    }

    #[test]
    fn all_arcs_covered_without_delegates() {
        let g = star_graph(9);
        let pg = partition_graph(&g, 4, None);
        let total: usize = pg.ranks.iter().map(|r| r.num_local_arcs()).sum();
        assert_eq!(total, g.num_arcs());
    }

    #[test]
    fn all_arcs_covered_with_delegates() {
        let g = star_graph(9);
        // Center vertex 0 has degree 8 -> becomes a delegate.
        let pg = partition_graph(&g, 4, Some(5));
        assert_eq!(pg.delegates.as_slice(), &[0]);
        let total: usize = pg.ranks.iter().map(|r| r.num_local_arcs()).sum();
        assert_eq!(total, g.num_arcs());
        // The hub's arcs are spread across all ranks.
        for r in &pg.ranks {
            assert_eq!(r.delegate_slice(0).len(), 2);
        }
    }

    #[test]
    fn delegate_has_empty_owned_adjacency() {
        let g = star_graph(9);
        let pg = partition_graph(&g, 2, Some(5));
        let owner = pg.partition.owner(0);
        let rg = &pg.ranks[owner];
        assert_eq!(rg.adj(0).count(), 0);
    }

    #[test]
    fn local_arcs_match_global() {
        let g = star_graph(7);
        let pg = partition_graph(&g, 3, Some(4));
        let mut local: Vec<_> = pg
            .ranks
            .iter()
            .flat_map(|r| r.local_arcs().collect::<Vec<_>>())
            .collect();
        local.sort_unstable();
        let mut global: Vec<_> = g.arcs().collect();
        global.sort_unstable();
        assert_eq!(local, global);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = star_graph(3);
        let pg = partition_graph(&g, 8, None);
        let total: usize = pg.ranks.iter().map(|r| r.num_local_arcs()).sum();
        assert_eq!(total, g.num_arcs());
        for v in 0..3u32 {
            let o = pg.partition.owner(v);
            assert!(pg.ranks[o].owns(v));
        }
    }
}
