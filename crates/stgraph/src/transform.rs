//! Graph transformations for the interactive workflows the paper's
//! introduction describes: "the user adding or removing classes of edges
//! and/or vertices and adjusting edge distance functions".
//!
//! All transforms are pure (they build a new [`CsrGraph`]) and preserve
//! vertex ids unless stated otherwise, so seed sets and Voronoi state keyed
//! by vertex id remain meaningful across edits.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vertex, Weight};
use crate::traversal::connected_components;

/// Removes every edge for which `drop` returns true.
pub fn remove_edges(
    g: &CsrGraph,
    mut drop: impl FnMut(Vertex, Vertex, Weight) -> bool,
) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v, w) in g.undirected_edges() {
        if !drop(u, v, w) {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Removes the given vertices (all their incident edges disappear; the
/// vertices stay as isolated ids so ids remain stable).
pub fn remove_vertices(g: &CsrGraph, vertices: &[Vertex]) -> CsrGraph {
    let mut gone = vec![false; g.num_vertices()];
    for &v in vertices {
        gone[v as usize] = true;
    }
    remove_edges(g, |u, v, _| gone[u as usize] || gone[v as usize])
}

/// Applies `f` to every edge weight (clamped to at least 1, the suite's
/// weight invariant). The paper's "adjusting edge distance functions".
pub fn map_weights(g: &CsrGraph, mut f: impl FnMut(Vertex, Vertex, Weight) -> Weight) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v, w) in g.undirected_edges() {
        b.add_edge(u, v, f(u, v, w).max(1));
    }
    b.build()
}

/// The subgraph induced by `keep` (edges with both endpoints kept),
/// preserving vertex ids.
pub fn induced_subgraph(g: &CsrGraph, keep: &[Vertex]) -> CsrGraph {
    let mut kept = vec![false; g.num_vertices()];
    for &v in keep {
        kept[v as usize] = true;
    }
    remove_edges(g, |u, v, _| !kept[u as usize] || !kept[v as usize])
}

/// Result of compacting a graph to its largest connected component.
#[derive(Clone, Debug)]
pub struct Compacted {
    /// The compacted graph over `0..component_size`.
    pub graph: CsrGraph,
    /// `old_of[new_id] = old_id`.
    pub old_of: Vec<Vertex>,
    /// `new_of[old_id] = Some(new_id)` for kept vertices.
    pub new_of: Vec<Option<Vertex>>,
}

/// Extracts the largest connected component and renumbers its vertices
/// densely — the preparation step the paper's seed selection implies
/// ("first, we identify the largest connected component").
pub fn largest_component(g: &CsrGraph) -> Compacted {
    let cc = connected_components(g);
    let members = cc.largest_component_vertices();
    let mut new_of: Vec<Option<Vertex>> = vec![None; g.num_vertices()];
    for (new_id, &old) in members.iter().enumerate() {
        new_of[old as usize] = Some(new_id as Vertex);
    }
    let mut b = GraphBuilder::new(members.len());
    for (u, v, w) in g.undirected_edges() {
        if let (Some(nu), Some(nv)) = (new_of[u as usize], new_of[v as usize]) {
            b.add_edge(nu, nv, w);
        }
    }
    Compacted {
        graph: b.build(),
        old_of: members,
        new_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(0, 1, 2), (1, 2, 3), (2, 3, 4), (4, 5, 5)]);
        b.build()
    }

    #[test]
    fn remove_edges_by_weight() {
        let g = remove_edges(&sample(), |_, _, w| w >= 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert_eq!(g.num_vertices(), 6, "vertex ids preserved");
    }

    #[test]
    fn remove_vertices_drops_incident_edges() {
        let g = remove_vertices(&sample(), &[2]);
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(0, 1));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn map_weights_transforms_and_clamps() {
        let g = map_weights(&sample(), |_, _, w| w.saturating_sub(10));
        // All weights clamp to 1.
        for (_, _, w) in g.undirected_edges() {
            assert_eq!(w, 1);
        }
        assert_eq!(g.num_edges(), sample().num_edges());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = induced_subgraph(&sample(), &[0, 1, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 3));
        assert!(!g.has_edge(4, 5));
    }

    #[test]
    fn largest_component_compacts_ids() {
        let c = largest_component(&sample());
        // Component {0,1,2,3} wins over {4,5}.
        assert_eq!(c.graph.num_vertices(), 4);
        assert_eq!(c.graph.num_edges(), 3);
        assert_eq!(c.old_of, vec![0, 1, 2, 3]);
        assert_eq!(c.new_of[4], None);
        // Edge weights carried over through the renumbering.
        let (nu, nv) = (c.new_of[2].unwrap(), c.new_of[3].unwrap());
        assert_eq!(c.graph.edge_weight(nu, nv), Some(4));
    }

    #[test]
    fn transforms_preserve_validity() {
        for g in [
            remove_edges(&sample(), |u, _, _| u == 0),
            remove_vertices(&sample(), &[1, 4]),
            map_weights(&sample(), |_, _, w| w * 2),
            induced_subgraph(&sample(), &[1, 2, 3]),
            largest_component(&sample()).graph,
        ] {
            assert!(g.validate_symmetric().is_ok());
        }
    }
}
