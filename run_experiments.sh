#!/bin/bash
# Regenerates every table/figure of the paper at full analogue scale.
# Outputs land in bench_results/<name>.txt, with a machine-readable
# BENCH_<name>.json twin next to each (see DESIGN.md).
# Pass --quick to run every harness at CI scale.
set -u
cd "$(dirname "$0")"
EXTRA="${1:-}"
mkdir -p bench_results
BINS="table1_apsp_vs_vc fig3_strong_scaling fig4_seed_count fig5_6_queue fig7_weight_dist table5_seed_selection fig8_memory table6_runtime_comparison table7_quality fig9_tree_export"
for b in $BINS; do
  echo "=== running $b ==="
  # shellcheck disable=SC2086  # $EXTRA is intentionally word-split
  timeout 1800 cargo run -q -p bench --release --bin "$b" -- $EXTRA > "bench_results/$b.txt" 2>&1
  echo "    exit $?"
done
echo "ALL EXPERIMENTS DONE"
