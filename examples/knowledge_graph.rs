//! Knowledge-graph exploration: the paper's motivating scenario (§I).
//!
//! A network scientist has a co-authorship graph (the MiCo analogue) and a
//! handful of researchers of interest. With |S| = 2 a shortest path
//! explains their connection; with more seeds, the Steiner tree is the
//! generalization: a minimal connection subgraph through intermediate
//! (Steiner) collaborators. This example walks that workflow — growing the
//! seed set, comparing selection strategies, and inspecting the tree.
//!
//! Run: `cargo run --release --example knowledge_graph`

use seeds::Strategy;
use steiner::{solve, SolverConfig};
use stgraph::datasets::Dataset;

fn main() {
    // Scaled-down analogue of the MiCo co-author graph (Table III).
    let graph = Dataset::Mco.generate_tiny(2024);
    println!(
        "co-author graph: {} authors, {} collaborations",
        graph.num_vertices(),
        graph.num_edges()
    );

    let config = SolverConfig {
        num_ranks: 2,
        ..SolverConfig::default()
    };

    // Start with two researchers: the tree is just a shortest path.
    let pair = seeds::select(&graph, 2, Strategy::Eccentric, 7);
    let report = solve(&graph, &pair, &config).expect("connected");
    println!(
        "\n|S| = 2 (shortest path): {:?} connected through {} intermediate authors, \
         total distance {}",
        pair,
        report.tree.steiner_vertices().len(),
        report.tree.total_distance()
    );

    // Grow the set of entities of interest; watch the connection subgraph
    // stay small relative to the graph.
    for k in [4usize, 8, 16, 32] {
        let group = seeds::select(&graph, k, Strategy::UniformRandom, 7);
        let report = solve(&graph, &group, &config).expect("connected");
        println!(
            "|S| = {k:>2}: tree has {:>3} edges, {:>3} steiner vertices, distance {}",
            report.tree.num_edges(),
            report.tree.steiner_vertices().len(),
            report.tree.total_distance()
        );
        report.tree.validate(&graph).expect("valid tree");
    }

    // Strategy comparison: tight communities vs far-flung entities.
    println!("\nseed-selection strategies at |S| = 16:");
    for strategy in Strategy::ALL {
        let group = seeds::select(&graph, 16, strategy, 7);
        let report = solve(&graph, &group, &config).expect("connected");
        println!(
            "  {:<15} spread {:>5.2} hops -> distance {:>8}, {} edges",
            strategy.name(),
            seeds::mean_pairwise_hops(&graph, &group),
            report.tree.total_distance(),
            report.tree.num_edges()
        );
    }
    println!("\n(proximate groups — e.g. one research community — need far");
    println!("smaller explanation subgraphs than eccentric ones, Table V's shape)");
}
