//! Interactive relationship exploration: the paper's §I workflow where "a
//! user will interact with such computation in various ways ... adding or
//! removing classes of edges and/or vertices and adjusting edge distance
//! functions based on investigating the output".
//!
//! This example emulates three interaction rounds on a social-graph
//! analogue: (1) initial solve, (2) re-weight a "relationship class" the
//! user distrusts (making those edges expensive), (3) delete the most
//! load-bearing Steiner vertex and re-solve — each round re-running the
//! solver fast enough for interactivity.
//!
//! Run: `cargo run --release --example interactive_exploration`

use steiner::{solve, SolveReport, SolverConfig};
use stgraph::datasets::Dataset;
use stgraph::{CsrGraph, GraphBuilder};

fn resolve(graph: &CsrGraph, seeds: &[u32]) -> SolveReport {
    let config = SolverConfig {
        num_ranks: 2,
        ..SolverConfig::default()
    };
    solve(graph, seeds, &config).expect("seeds connected")
}

fn describe(round: &str, report: &SolveReport) {
    println!(
        "{round}: distance {:>8}, {:>3} edges, {:>3} steiner vertices, solved in {:?}",
        report.tree.total_distance(),
        report.tree.num_edges(),
        report.tree.steiner_vertices().len(),
        report.time_to_solution()
    );
}

fn main() {
    let graph = Dataset::Lvj.generate_tiny(7);
    let seeds = seeds::select(&graph, 12, seeds::Strategy::BfsLevel, 5);
    println!(
        "social graph: {} users, {} ties; exploring connections among {:?}\n",
        graph.num_vertices(),
        graph.num_edges(),
        seeds
    );

    // Round 1: the initial picture.
    let round1 = resolve(&graph, &seeds);
    describe("round 1 (initial)      ", &round1);

    // Round 2: the user distrusts "weak ties" — edges above the median
    // weight — and triples their distance to push the tree onto strong
    // relationships.
    let mut weights: Vec<u64> = graph.undirected_edges().map(|(_, _, w)| w).collect();
    weights.sort_unstable();
    let median = weights[weights.len() / 2];
    let mut b = GraphBuilder::with_capacity(graph.num_vertices(), graph.num_edges());
    for (u, v, w) in graph.undirected_edges() {
        let adjusted = if w > median { w * 3 } else { w };
        b.add_edge(u, v, adjusted);
    }
    let reweighted = b.build();
    let round2 = resolve(&reweighted, &seeds);
    describe("round 2 (weak ties x3) ", &round2);

    // Round 3: the user removes the most-connected Steiner vertex in the
    // current tree ("what if this intermediary disappears?").
    let tree = &round2.tree;
    let hub = *tree
        .steiner_vertices()
        .iter()
        .max_by_key(|&&v| reweighted.degree(v))
        .expect("tree uses steiner vertices");
    let mut b = GraphBuilder::with_capacity(reweighted.num_vertices(), reweighted.num_edges());
    for (u, v, w) in reweighted.undirected_edges() {
        if u != hub && v != hub {
            b.add_edge(u, v, w);
        }
    }
    let without_hub = b.build();
    match solve(
        &without_hub,
        &seeds,
        &SolverConfig {
            num_ranks: 2,
            ..SolverConfig::default()
        },
    ) {
        Ok(round3) => {
            describe(&format!("round 3 (drop hub {hub:>3})"), &round3);
            println!(
                "\nremoving hub {hub} cost {} extra distance — the graph routed around it",
                round3.tree.total_distance() as i64 - round2.tree.total_distance() as i64
            );
        }
        Err(e) => println!("round 3: removing hub {hub} disconnected the seeds ({e})"),
    }
}
