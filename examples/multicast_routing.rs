//! Multicast-tree construction: the communication-network application the
//! paper cites (§I, refs [6], [7]).
//!
//! A network operator must deliver a stream from one source to a group of
//! subscribers. Routing along independent unicast shortest paths wastes
//! bandwidth on shared prefixes; a Steiner tree over {source} ∪ subscribers
//! is the classic multicast optimization. This example builds a
//! grid-with-shortcuts topology (link weights = latency), computes both
//! routings, and reports the bandwidth saving.
//!
//! Run: `cargo run --release --example multicast_routing`

use baselines::shortest_path::dijkstra;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use steiner::{solve, SolverConfig};
use stgraph::generators::grid2d;
use stgraph::GraphBuilder;

fn main() {
    // 16x16 grid network plus random long-haul shortcuts.
    let (rows, cols) = (16usize, 16usize);
    let n = rows * cols;
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut b = GraphBuilder::new(n);
    for (u, v) in grid2d(rows, cols) {
        b.add_edge(u, v, rng.gen_range(1..10)); // local links
    }
    for _ in 0..n / 8 {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(5..25)); // long-haul links
        }
    }
    let network = b.build();

    // Source router and a multicast group of subscribers.
    let source: u32 = 0;
    let subscribers: Vec<u32> = (0..12)
        .map(|_| rng.gen_range(1..n as u32))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    println!(
        "network: {} routers, {} links; source {source}, {} subscribers",
        network.num_vertices(),
        network.num_edges(),
        subscribers.len()
    );

    // Baseline: unicast — union of shortest paths, counting every link
    // once per stream that crosses it (bandwidth model).
    let sp = dijkstra(&network, source);
    let mut unicast_link_uses = 0u64;
    let mut unicast_latency_worst = 0u64;
    for &sub in &subscribers {
        let mut cur = sub;
        while let Some(p) = sp.pred[cur as usize] {
            unicast_link_uses += 1;
            cur = p;
        }
        unicast_latency_worst = unicast_latency_worst.max(sp.dist[sub as usize]);
    }

    // Multicast: Steiner tree over {source} ∪ subscribers. Each tree link
    // carries the stream exactly once.
    let mut seeds = subscribers.clone();
    seeds.push(source);
    let config = SolverConfig {
        num_ranks: 4,
        refine: true, // squeeze the tree with the KMB 4-5 post-pass
        ..SolverConfig::default()
    };
    let report = solve(&network, &seeds, &config).expect("network connected");
    let tree = &report.tree;
    tree.validate(&network).expect("valid multicast tree");

    println!("\nunicast routing : {unicast_link_uses} link-uses (stream copies)");
    println!(
        "multicast tree  : {} link-uses across {} links, total latency weight {}",
        tree.num_edges(),
        tree.num_edges(),
        tree.total_distance()
    );
    println!(
        "bandwidth saving: {:.1}% fewer stream copies",
        100.0 * (1.0 - tree.num_edges() as f64 / unicast_link_uses as f64)
    );
    println!(
        "replication points (Steiner routers): {:?}",
        tree.steiner_vertices().len()
    );
    println!("\n(the multicast tree reuses shared path prefixes that unicast");
    println!("duplicates — the Steiner formulation from the paper's refs [6,7])");
}
