//! Quickstart: build a weighted graph, pick seed vertices, and compute a
//! 2-approximate Steiner minimal tree with the distributed solver.
//!
//! Run: `cargo run --release --example quickstart`

use steiner::{solve, SolverConfig};
use stgraph::GraphBuilder;

fn main() {
    // A small road-network-like graph: two clusters joined by a bridge,
    // plus a shortcut hub. Weights are travel costs.
    let mut b = GraphBuilder::new(10);
    b.extend_edges([
        // Cluster A: 0-1-2 triangle.
        (0, 1, 3),
        (1, 2, 4),
        (0, 2, 5),
        // Cluster B: 6-7-8 triangle.
        (6, 7, 3),
        (7, 8, 4),
        (6, 8, 5),
        // Bridge through 3-4-5.
        (2, 3, 2),
        (3, 4, 2),
        (4, 5, 2),
        (5, 6, 2),
        // Hub 9 shortcuts the middle.
        (3, 9, 1),
        (9, 5, 1),
    ]);
    let graph = b.build();

    // The user's entities of interest (terminals).
    let seeds = vec![0, 8, 4];

    let config = SolverConfig {
        num_ranks: 2, // simulated "MPI processes"
        ..SolverConfig::default()
    };
    let report = solve(&graph, &seeds, &config).expect("seeds are connected");

    println!("Steiner tree for seeds {seeds:?}:");
    for &(u, v, w) in &report.tree.edges {
        println!("  {u} -- {v}  (weight {w})");
    }
    println!("total distance D(G_S) = {}", report.tree.total_distance());
    println!(
        "steiner (non-seed) vertices used: {:?}",
        report.tree.steiner_vertices()
    );
    println!();
    println!("phase breakdown:");
    for (phase, time) in report.phase_times.iter() {
        println!("  {:<16} {time:?}", phase.name());
    }
    println!();
    println!("graphviz:\n{}", report.tree.to_dot());

    // Every returned tree passes full validation against the graph.
    report.tree.validate(&graph).expect("valid Steiner tree");
}
