//! Keyword search over a knowledge graph with group Steiner trees.
//!
//! One of the paper's motivating citations ([11], SIGMOD'16) formulates
//! keyword search as group Steiner: each query keyword matches a *group*
//! of entities; an answer is a tree touching one match per keyword, and
//! lighter trees are tighter answers. This example synthesizes keyword
//! match-sets over a knowledge-graph analogue, answers a three-keyword
//! query, and contrasts it with node-weighted search where "hub" entities
//! are penalized.
//!
//! Run: `cargo run --release --example keyword_search`

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stgraph::datasets::Dataset;
use stvariants::{group_steiner, node_weighted_steiner};

fn main() {
    let graph = Dataset::Mco.generate_tiny(77);
    println!(
        "knowledge graph: {} entities, {} relations",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Each keyword matches a handful of entities (synthetic match-sets
    // drawn from the largest component).
    let cc = stgraph::traversal::connected_components(&graph);
    let universe = cc.largest_component_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let keywords = ["turing", "protein", "lattice"];
    let groups: Vec<Vec<u32>> = keywords
        .iter()
        .map(|_| {
            universe
                .choose_multiple(&mut rng, 6)
                .copied()
                .collect::<Vec<_>>()
        })
        .collect();
    for (kw, group) in keywords.iter().zip(&groups) {
        println!("keyword {kw:?} matches entities {group:?}");
    }

    // Answer = group Steiner tree: one match per keyword, minimal glue.
    let answer = group_steiner(&graph, &groups).expect("answerable query");
    println!(
        "\nanswer tree: {} edges, total distance {}, vertices {:?}",
        answer.num_edges(),
        answer.total_distance(),
        answer.vertices()
    );
    assert!(stvariants::group::covers_all_groups(&answer, &groups));
    answer.validate(&graph).expect("valid tree");

    // Node-weighted variant: penalize high-degree "celebrity" entities so
    // answers route through specific, informative nodes (a common keyword
    // search refinement).
    let costs: Vec<u64> = graph
        .vertices()
        .map(|v| (graph.degree(v) as u64).saturating_sub(10).pow(2) / 4)
        .collect();
    let reps: Vec<u32> = answer.seeds.to_vec();
    let penalized = node_weighted_steiner(&graph, &costs, &reps).expect("connected");
    println!(
        "\nhub-penalized answer over the same representatives: edge cost {}, node cost {}",
        penalized.edge_cost, penalized.node_cost
    );
    let hubs_before: usize = answer
        .vertices()
        .iter()
        .filter(|&&v| graph.degree(v) > 20)
        .count();
    let hubs_after: usize = penalized
        .tree
        .vertices()
        .iter()
        .filter(|&&v| graph.degree(v) > 20)
        .count();
    println!("hub entities used: {hubs_before} before penalty, {hubs_after} after");
}
