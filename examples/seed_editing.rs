//! Interactive seed editing with incremental Voronoi maintenance.
//!
//! The paper's target workflow is an analyst iterating on a seed set —
//! "adding or removing classes of edges and/or vertices" — with answers
//! fast enough to feel interactive. `InteractiveSession` maintains the
//! Voronoi labelling across edits, so each add/remove touches only the
//! affected cells; this example scripts such a session and reports how
//! little of the graph each edit disturbs.
//!
//! Run: `cargo run --release --example seed_editing`

use std::time::Instant;
use steiner::interactive::InteractiveSession;
use stgraph::datasets::Dataset;

fn main() {
    let graph = Dataset::Lvj.generate_tiny(31);
    let n = graph.num_vertices();
    println!("social graph: {} users, {} ties", n, graph.num_edges());

    let initial = seeds::select(&graph, 10, seeds::Strategy::BfsLevel, 3);
    let t = Instant::now();
    let mut session = InteractiveSession::new(&graph, &initial).expect("valid seeds");
    println!(
        "session opened with {} seeds in {:?}\n",
        initial.len(),
        t.elapsed()
    );

    let report = |label: &str, session: &InteractiveSession| {
        let t = Instant::now();
        let tree = session.tree().expect("seeds connected");
        println!(
            "{label}: |S|={:<3} D(G_S)={:<8} |E_S|={:<4} (tree built in {:?})",
            session.seeds().len(),
            tree.total_distance(),
            tree.num_edges(),
            t.elapsed()
        );
    };
    report("initial        ", &session);

    // The analyst adds three entities of interest, one at a time.
    let candidates = seeds::select(&graph, 40, seeds::Strategy::UniformRandom, 9);
    let mut added = Vec::new();
    for &v in candidates.iter().filter(|v| !initial.contains(v)).take(3) {
        let t = Instant::now();
        let stats = session.add_seed(v).expect("in range");
        println!(
            "+ seed {v:>4}: relabeled {:>4}/{n} vertices ({:.1}%) in {:?}",
            stats.relabeled,
            100.0 * stats.relabeled as f64 / n as f64,
            t.elapsed()
        );
        added.push(v);
    }
    report("after 3 adds   ", &session);

    // Then retracts one original seed and one recent addition.
    for &v in [initial[0], added[0]].iter() {
        let t = Instant::now();
        let stats = session.remove_seed(v).expect("known seed");
        println!(
            "- seed {v:>4}: relabeled {:>4}/{n} vertices ({:.1}%) in {:?}",
            stats.relabeled,
            100.0 * stats.relabeled as f64 / n as f64,
            t.elapsed()
        );
    }
    report("after 2 removes", &session);

    // The maintained labelling stays exact (checked against a fresh
    // multi-source Dijkstra).
    session
        .validate_against_fresh()
        .expect("incremental state exact");
    println!("\nincremental labelling verified against a fresh recomputation");
}
