//! VLSI net routing with group Steiner trees — the paper's first-cited
//! application domain (§I refs [4], [5]: "class steiner trees and
//! vlsi-design", wirelength estimation for placement).
//!
//! A chip is a routing grid; a *net* must electrically connect one pin
//! from each of its pin-groups (equivalent pins of a macro are a group).
//! Wirelength is the routing metric, and the group Steiner tree is the
//! canonical wirelength estimator. This example routes three nets on a
//! congestion-weighted grid and reports wirelength against the naive
//! bounding-box (HPWL) estimate.
//!
//! Run: `cargo run --release --example vlsi_routing`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stgraph::generators::grid2d;
use stgraph::GraphBuilder;
use stvariants::{group::covers_all_groups, group_steiner};

const COLS: usize = 24;
const ROWS: usize = 24;

fn id(r: usize, c: usize) -> u32 {
    (r * COLS + c) as u32
}

fn pos(v: u32) -> (usize, usize) {
    ((v as usize) / COLS, (v as usize) % COLS)
}

fn main() {
    // Routing fabric: a grid whose edge weights model congestion (center
    // tracks are busier, so they cost more).
    let mut rng = ChaCha8Rng::seed_from_u64(1889); // first Steiner paper
    let mut b = GraphBuilder::new(ROWS * COLS);
    for (u, v) in grid2d(ROWS, COLS) {
        let (r1, c1) = pos(u);
        let center =
            ((r1 as f64 - ROWS as f64 / 2.0).abs() + (c1 as f64 - COLS as f64 / 2.0).abs()) as u64;
        let congestion = (ROWS as u64).saturating_sub(center) / 4;
        b.add_edge(u, v, 1 + congestion + rng.gen_range(0..2));
    }
    let fabric = b.build();
    println!(
        "routing fabric: {ROWS}x{COLS} grid, {} tracks, congestion-weighted",
        fabric.num_edges()
    );

    // Three nets; each pin-group lists electrically equivalent pins.
    let nets: Vec<(&str, Vec<Vec<u32>>)> = vec![
        (
            "clk",
            vec![
                vec![id(0, 0), id(1, 0)],     // driver corner
                vec![id(0, 23), id(1, 23)],   // NE sink
                vec![id(23, 0), id(22, 0)],   // SW sink
                vec![id(23, 23), id(22, 23)], // SE sink
            ],
        ),
        (
            "data0",
            vec![
                vec![id(4, 4)],
                vec![id(4, 19), id(5, 19)],
                vec![id(12, 12), id(12, 13), id(13, 12)],
            ],
        ),
        (
            "rst",
            vec![
                vec![id(20, 2), id(20, 3)],
                vec![id(2, 20)],
                vec![id(10, 21), id(11, 21)],
                vec![id(18, 18)],
            ],
        ),
    ];

    println!(
        "\n{:<6} {:>6} {:>11} {:>12} {:>7}",
        "net", "pins", "wirelength", "HPWL bound", "ratio"
    );
    for (name, groups) in &nets {
        let tree = group_steiner(&fabric, groups).expect("routable");
        assert!(covers_all_groups(&tree, groups), "net must touch all pins");
        tree.validate(&fabric).expect("valid route");

        // Half-perimeter wirelength of the chosen pins: the classic quick
        // estimate that Steiner routing refines.
        let chosen: Vec<(usize, usize)> = tree.seeds.iter().map(|&s| pos(s)).collect();
        let (mut rmin, mut rmax, mut cmin, mut cmax) = (usize::MAX, 0, usize::MAX, 0);
        for &(r, c) in &chosen {
            rmin = rmin.min(r);
            rmax = rmax.max(r);
            cmin = cmin.min(c);
            cmax = cmax.max(c);
        }
        let hpwl = (rmax - rmin) + (cmax - cmin);
        println!(
            "{name:<6} {:>6} {:>11} {:>12} {:>6.2}x",
            groups.len(),
            tree.total_distance(),
            hpwl,
            tree.total_distance() as f64 / hpwl.max(1) as f64
        );
    }
    println!("\n(wirelength > HPWL because HPWL ignores congestion weighting and");
    println!("multi-pin branching; the Steiner route is the achievable estimate)");
}
