//! Deterministic per-case random source for the mini proptest engine.

/// A small, fast, deterministic RNG (splitmix64 stream).
///
/// Each test case gets a stream keyed by the test's module path and the
/// case index, so failures reproduce exactly on rerun with no persisted
/// state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
