//! The [`Strategy`] trait and core combinators of the mini proptest
//! engine: value generation only, no shrinking.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object safe: `generate` takes `&self`, and all combinators carry
/// `Self: Sized` bounds, so `Box<dyn Strategy<Value = T>>` works (used by
/// `prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy generating from the strategy `f` builds out of each
    /// generated value (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies of one value type (the
/// `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// A `Vec` of strategies generates element-wise (upstream proptest
/// provides the same impl; the steiner proptests rely on it for
/// per-vertex parent ranges).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
