//! Collection strategies: `vec` and `hash_set` with exact or ranged sizes.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;

/// A size specification: an exact length or a half-open range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi_exclusive <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet`s of distinct elements from `element`.
///
/// The caller must size the request within the element domain; generation
/// panics after a generous retry budget rather than looping forever.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        let budget = 1000 * (n + 1);
        for _ in 0..budget {
            if out.len() == n {
                return out;
            }
            out.insert(self.element.generate(rng));
        }
        panic!("hash_set strategy could not reach {n} distinct elements (domain too small?)");
    }
}
