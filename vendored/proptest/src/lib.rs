//! Offline vendored shim for `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a miniature property-testing engine with the API
//! surface its proptests use: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! `prop_oneof!` / [`Just`], integer-range strategies, tuple and `Vec<S>`
//! strategies, [`collection::vec`] / [`collection::hash_set`], and
//! [`option::of`].
//!
//! Differences from upstream, deliberate for offline minimalism:
//! - **No shrinking.** A failing case reports its deterministic case
//!   number; rerunning reproduces it exactly (cases are seeded from the
//!   test path and case index, not from entropy).
//! - No persisted failure regressions, no forking, no timeouts.

use std::fmt;

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy, Union};

/// Failure raised by `prop_assert*` inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Number-of-cases configuration accepted by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a proptest module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines deterministic property tests over generated inputs.
///
/// Supported grammar (the subset of upstream `proptest!` this workspace
/// uses): an optional `#![proptest_config(expr)]` header followed by test
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest property {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the surrounding property when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Chooses uniformly among the listed strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u64..50) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..50).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0u32..10, 0u32..10),
            v in crate::collection::vec(0u8..4, 0..12),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 12);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn flat_map_scales(n in 2usize..9, ) {
            let nested = (2usize..9).prop_flat_map(|m| {
                crate::collection::vec(0usize..m, m)
            });
            let mut rng = crate::test_runner::TestRng::for_case("nested", n as u32);
            let v = nested.generate(&mut rng);
            prop_assert!(v.iter().all(|&e| e < v.len()));
        }

        #[test]
        fn oneof_and_just(q in prop_oneof![Just(1u8), Just(7u8)]) {
            prop_assert!(q == 1u8 || q == 7u8);
        }

        #[test]
        fn hash_sets_have_exact_len(s in crate::collection::hash_set(0u32..100, 5)) {
            prop_assert_eq!(s.len(), 5);
        }

        #[test]
        fn option_of_generates_both(o in crate::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let sample = |case| {
            let mut rng = crate::test_runner::TestRng::for_case("det", case);
            (0u64..1_000_000).generate(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(
            (0..32).map(sample).collect::<Vec<_>>(),
            (1..33).map(sample).collect::<Vec<_>>(),
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}
