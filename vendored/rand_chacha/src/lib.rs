//! Offline vendored shim for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the vendored `rand` traits.
//!
//! The cipher core is the standard ChaCha quarter-round network (8 rounds
//! here), keyed by the 32-byte seed with a 64-bit block counter, so the
//! stream is deterministic per seed and of cryptographic-permutation
//! quality. The exact word stream is not guaranteed to equal upstream
//! `rand_chacha` (which the workspace never relies on); determinism per
//! seed is what the generators, seed selection, and schedule perturber
//! need, and that holds.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    next_word: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            // "expand 32-byte k", the standard ChaCha constants.
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // One double round: four column rounds + four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.next_word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            next_word: BLOCK_WORDS, // force a refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next_word >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.next_word];
        self.next_word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        // 40 words from a ChaCha keystream collide with probability ~2^-27.
        assert!(dedup.len() >= 39, "keystream looks degenerate: {first:?}");
    }

    #[test]
    fn works_with_rng_extension() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..100 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        // RFC 7539 §2.1.1 test vector for the ChaCha quarter round.
        let mut st = [0u32; BLOCK_WORDS];
        st[0] = 0x1111_1111;
        st[1] = 0x0102_0304;
        st[2] = 0x9b8d_6f43;
        st[3] = 0x0123_4567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a_92f4);
        assert_eq!(st[1], 0xcb1c_f8ce);
        assert_eq!(st[2], 0x4581_472e);
        assert_eq!(st[3], 0x5881_c4bb);
    }
}
