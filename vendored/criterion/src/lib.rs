//! Offline vendored shim for `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal wall-clock benchmark harness with the
//! criterion API surface the `bench` crate uses: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`] /
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and
//! [`black_box`]. No statistics, plots, or baselines — each benchmark is
//! timed over a short fixed budget and reported as mean wall-clock time.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not differentiated).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (iterations, total elapsed) recorded by the last timing loop.
    result: Option<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly within the harness budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup to populate caches / lazy state.
        black_box(routine());
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
            if measured >= self.budget {
                break;
            }
        }
        self.result = Some((iters, measured));
    }
}

fn run_one(label: &str, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        result: None,
        budget,
    };
    f(&mut b);
    match b.result {
        Some((iters, total)) => {
            let mean = total / iters.max(1) as u32;
            println!("bench {label}: {mean:?}/iter over {iters} iters");
        }
        None => println!("bench {label}: no timing loop executed"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep CI smoke runs cheap; set CRITERION_BUDGET_MS to measure.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
