//! Offline vendored shim for `crossbeam`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `crossbeam::channel` it uses: unbounded
//! and bounded MPMC channels with `send` / `recv` / `try_recv`,
//! disconnection semantics, and cloneable senders. Backed by a
//! `Mutex<VecDeque>` + `Condvar`; per-sender FIFO ordering holds (globally
//! FIFO here, which is stronger than crossbeam's guarantee).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cond: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on an empty, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}
    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    fn poison_free<'a, T>(m: &'a Mutex<State<T>>) -> std::sync::MutexGuard<'a, State<T>> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a bounded channel. This shim never blocks senders: the
    /// capacity is accepted for API compatibility but not enforced, which
    /// is indistinguishable for the workspace's uses (the coordinator
    /// sizes the bound to the exact number of sends).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = poison_free(&self.shared.state);
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            poison_free(&self.shared.state).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = poison_free(&self.shared.state);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = poison_free(&self.shared.state);
            loop {
                if let Some(m) = st.queue.pop_front() {
                    return Ok(m);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.cond.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = poison_free(&self.shared.state);
            match st.queue.pop_front() {
                Some(m) => Ok(m),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            poison_free(&self.shared.state).queue.len()
        }

        /// Whether the channel is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            poison_free(&self.shared.state).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            poison_free(&self.shared.state).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_try_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(7u32).unwrap();
            assert_eq!(h.join().unwrap(), Ok(7));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cloned_senders_all_count() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(3).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
