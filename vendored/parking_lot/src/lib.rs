//! Offline vendored shim for `parking_lot`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *small slice* of the parking_lot API it actually
//! uses, implemented on top of `std::sync`. Semantics match parking_lot
//! where the workspace depends on them: `lock()` returns a guard directly
//! (no poisoning — a panicked lock holder does not poison the lock for
//! other threads).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic
    /// in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
