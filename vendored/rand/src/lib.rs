//! Offline vendored shim for `rand` 0.8.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the trait surface it actually uses: [`RngCore`],
//! [`SeedableRng`] (with the same splitmix64-based `seed_from_u64`
//! expansion as `rand_core`), the [`Rng`] extension trait with `gen_range`
//! / `gen_bool`, and [`seq::SliceRandom`] with `choose` /
//! `choose_multiple` / `shuffle`. Exact output streams are not guaranteed
//! to match upstream `rand` — workspace code only relies on determinism
//! per seed, which this shim provides.

/// Core source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with splitmix64 (the same
    /// expansion `rand_core` 0.6 uses) and constructs the RNG.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type uniformly sampleable from a `lo..hi` / `lo..=hi` interval.
///
/// Mirrors upstream rand's shape: the *blanket* [`SampleRange`] impls over
/// this trait are what let `rng.gen_range(0..2)` infer the integer type
/// from surrounding arithmetic instead of defaulting to `i32`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling and shuffling (the `rand::seq` module surface).
pub mod seq {
    use super::RngCore;

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all elements when
        /// `amount` exceeds the length).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end uniform.
            for i in 0..amount {
                let j = i + uniform_index(rng, indices.len() - i);
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct XorShift(u64);
    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = XorShift(9);
        let v: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 10, "duplicates selected");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = XorShift(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
